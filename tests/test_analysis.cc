/**
 * @file
 * The static-analysis layer: diagnostic rendering, the check
 * registry, golden output over the seeded-defect corpus, and
 * programmatically seeded defects for every schedule / queue /
 * kernel audit. The final coverage test asserts that the union of
 * everything seeded here fires *every* registered check id — a new
 * check cannot be merged without a defect that proves it works.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analyze.h"
#include "analysis/check.h"
#include "codegen/emit.h"
#include "core/pipeline.h"
#include "eval/runner.h"
#include "machine/desc.h"
#include "regalloc/sharing.h"
#include "workload/kernels.h"
#include "workload/text.h"

namespace dms {
namespace {

const char *const kCorpusDir = DMS_SOURCE_ROOT "/tests/lint_corpus";

std::string
readFileOrDie(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "cannot open " << path;
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(),
                     suffix) == 0;
}

/** Lint one corpus file exactly like the dmslint CLI does. */
DiagnosticSink
lintCorpusFile(const std::string &name)
{
    const std::string text =
        readFileOrDie(std::string(kCorpusDir) + "/" + name);
    DiagnosticSink sink;
    if (endsWith(name, ".mtmpl"))
        lintMachineTemplate(text, name, sink);
    else if (endsWith(name, ".machine"))
        lintMachineText(text, name, sink);
    else if (endsWith(name, ".stats"))
        lintServeStatsText(text, name, sink);
    else if (endsWith(name, ".metrics"))
        lintMetricsText(text, name, sink);
    else if (endsWith(name, ".trace"))
        lintTraceText(text, name, sink);
    else
        lintLoopText(text, name, sink);
    return sink;
}

std::set<std::string>
firedIds(const DiagnosticSink &sink)
{
    std::set<std::string> ids;
    for (const Diagnostic &d : sink.diagnostics())
        ids.insert(d.checkId);
    return ids;
}

bool
fired(const DiagnosticSink &sink, const std::string &id)
{
    return firedIds(sink).count(id) > 0;
}

/** Every .machine/.mtmpl/.loop/.stats/.metrics/.trace case. */
const std::vector<std::string> &
corpusCases()
{
    static const std::vector<std::string> kCases = {
        "bad_parse.machine",      "dead_class.machine",
        "zero_latency.machine",   "copy_unused.machine",
        "bad_template.mtmpl",     "bad_parse.loop",
        "store_no_value.loop",    "dead_op.loop",
        "dangling_operand.loop",  "noncanonical.loop",
        "inconsistent.stats",     "inconsistent_net.stats",
        "undercount.metrics",     "misnested.trace",
    };
    return kCases;
}

/**
 * A fully compiled kernel on the paper's 4-cluster ring: the
 * honest artifacts every seeded defect below starts from. fir8 is
 * wide enough that DMS inserts move chains on the ring, which the
 * move/chain checks need.
 */
struct Compiled
{
    MachineModel machine = MachineModel::clusteredRing(4);
    Loop loop = kernelFir8();
    CompilationContext ctx;
    bool ok = false;
    ScheduleView view;
    SharedAllocation sharing;
    std::string kernelText;

    Compiled()
    {
        PipelineOptions po;
        po.scheduler = "dms";
        po.regalloc = true;
        po.codegen = true;
        po.perf = false;
        Pipeline pipeline(po);
        ok = pipeline.run(loop, machine, ctx);
        if (!ok)
            return;
        view = viewOf(*ctx.result.sched.schedule);
        sharing = shareQueues(ctx.queues, ctx.scheduledDdg(),
                              *ctx.result.sched.schedule);
        kernelText = emitKernel(ctx.scheduledDdg(), machine,
                                ctx.kernel, &ctx.queues);
    }

    const Ddg &ddg() const { return ctx.scheduledDdg(); }

    /** Input over the honest artifacts; caller may corrupt copies. */
    AnalysisInput
    input() const
    {
        AnalysisInput in;
        in.machine = &machine;
        in.ddg = &ctx.scheduledDdg();
        in.schedule = &view;
        in.queues = &ctx.queues;
        in.sharing = &sharing;
        in.kernel = &ctx.kernel;
        in.kernelText = &kernelText;
        return in;
    }
};

const Compiled &
compiled()
{
    static const Compiled c;
    return c;
}

DiagnosticSink
runInput(const AnalysisInput &input)
{
    DiagnosticSink sink;
    runChecks(input, "seeded", sink);
    return sink;
}

/** First live op of FU class @p cls, or kInvalidOp. */
OpId
firstOpOfClass(const Ddg &ddg, FuClass cls)
{
    for (OpId op : ddg.liveOps()) {
        if (fuClassOf(ddg.op(op).opc) == cls)
            return op;
    }
    return kInvalidOp;
}

// --- registry and rendering --------------------------------------------

TEST(CheckRegistry, AllIdsRegisteredAndSorted)
{
    const std::vector<const Check *> checks =
        CheckRegistry::instance().checks();
    std::vector<std::string> ids;
    for (const Check *c : checks) {
        ids.emplace_back(c->id());
        EXPECT_NE(CheckRegistry::instance().find(c->id()), nullptr);
        EXPECT_STRNE(c->description(), "");
    }
    EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end()));
    // The catalog is append-only: removing or renaming a stable id
    // breaks downstream suppression lists, so spell them all out.
    const std::vector<std::string> expected = {
        "kernel.queue-annotation",
        "kernel.shape",
        "loop.dangling-operand",
        "loop.dead-op",
        "loop.noncanonical-text",
        "loop.parse",
        "loop.store-no-value",
        "machine.copy-unused",
        "machine.fu-dead-class",
        "machine.latency-nonpositive",
        "machine.parse",
        "machine.template-expand",
        "obs.metrics-consistency",
        "obs.trace-nesting",
        "queue.file-recount",
        "queue.index-overlap",
        "queue.location",
        "queue.share-order",
        "queue.span-mismatch",
        "sched.chain-broken",
        "sched.comm-hop",
        "sched.dep-latency",
        "sched.height-consistency",
        "sched.ii-lower-bound",
        "sched.move-shape",
        "sched.resource-overuse",
        "sched.unscheduled-op",
        "serve.stats-consistency",
    };
    EXPECT_EQ(ids, expected);
}

TEST(Diagnostics, RenderAndExitCodes)
{
    DiagnosticSink sink;
    EXPECT_EQ(sink.exitCode(), 0);
    EXPECT_EQ(sink.renderText(), "");
    EXPECT_EQ(sink.renderJson(), "[\n]\n");

    sink.setSubject("unit.loop");
    DiagLocation loc;
    loc.line = 7;
    loc.op = 3;
    sink.report("loop.dead-op", Severity::Warning,
                ArtifactKind::Loop, loc, "result never used");
    EXPECT_EQ(sink.renderText(),
              "warning[loop.dead-op] unit.loop:7: result never "
              "used (op 3)\n");
    EXPECT_EQ(sink.exitCode(), 2);

    sink.report("sched.dep-latency", Severity::Error,
                ArtifactKind::Schedule, DiagLocation(), "boom");
    EXPECT_EQ(sink.maxSeverity(), Severity::Error);
    EXPECT_EQ(sink.exitCode(), 3);
    EXPECT_EQ(sink.count(Severity::Warning), 1);
    EXPECT_EQ(sink.count(Severity::Error), 1);

    const std::string json = sink.renderJson();
    EXPECT_NE(json.find("\"check\": \"loop.dead-op\""),
              std::string::npos);
    EXPECT_NE(json.find("\"severity\": \"error\""),
              std::string::npos);
}

// --- corpus goldens ----------------------------------------------------

TEST(LintCorpus, GoldenOutput)
{
    for (const std::string &name : corpusCases()) {
        const DiagnosticSink sink = lintCorpusFile(name);
        const std::string expected = readFileOrDie(
            std::string(kCorpusDir) + "/" + name + ".expected");
        EXPECT_EQ(sink.renderText(), expected) << name;
        EXPECT_FALSE(sink.empty()) << name;
    }
}

TEST(LintCorpus, EachCaseFlagsItsCheckWithLocation)
{
    struct Want
    {
        const char *file;
        const char *check;
        int line; ///< 0 = any
    };
    // Lines point at the seeded defect inside each corpus file.
    const Want wants[] = {
        {"bad_parse.machine", "machine.parse", 4},
        {"dead_class.machine", "machine.fu-dead-class", 7},
        {"zero_latency.machine", "machine.latency-nonpositive", 8},
        {"copy_unused.machine", "machine.copy-unused", 7},
        {"bad_template.mtmpl", "machine.template-expand", 5},
        {"bad_parse.loop", "loop.parse", 4},
        {"store_no_value.loop", "loop.store-no-value", 7},
        {"dead_op.loop", "loop.dead-op", 5},
        {"dangling_operand.loop", "loop.dangling-operand", 5},
        {"noncanonical.loop", "loop.noncanonical-text", 0},
        {"inconsistent.stats", "serve.stats-consistency", 0},
        {"inconsistent_net.stats", "serve.stats-consistency", 0},
        {"undercount.metrics", "obs.metrics-consistency", 6},
        {"misnested.trace", "obs.trace-nesting", 0},
    };
    for (const Want &w : wants) {
        const DiagnosticSink sink = lintCorpusFile(w.file);
        bool found = false;
        for (const Diagnostic &d : sink.diagnostics()) {
            if (d.checkId != w.check)
                continue;
            found = true;
            if (w.line > 0) {
                EXPECT_EQ(d.loc.line, w.line) << w.file;
            }
        }
        EXPECT_TRUE(found)
            << w.file << " did not fire " << w.check;
    }
}

// --- clean baselines ---------------------------------------------------

TEST(LintClean, CheckedInMachinesAndLoops)
{
    const std::string machines =
        std::string(DMS_SOURCE_ROOT) + "/examples/machines/";
    for (const char *name : {"ring4.machine", "mesh2x3.machine",
                             "xbar6.machine",
                             "unclustered8.machine"}) {
        DiagnosticSink sink;
        lintMachineText(readFileOrDie(machines + name), name, sink);
        EXPECT_EQ(sink.renderText(), "") << name;
    }
    const std::string loops =
        std::string(DMS_SOURCE_ROOT) + "/examples/loops/";
    for (const char *name : {"daxpy.loop", "dot_product.loop",
                             "fir8.loop", "stencil3.loop"}) {
        DiagnosticSink sink;
        lintLoopText(readFileOrDie(loops + name), name, sink);
        EXPECT_EQ(sink.renderText(), "") << name;
    }
}

TEST(LintClean, SweepTemplatesAndNamedKernels)
{
    for (const std::string &tmpl :
         {std::string(kClusteredMachineTemplate),
          std::string(kUnclusteredMachineTemplate)}) {
        DiagnosticSink sink;
        lintMachineTemplate(tmpl, "template", sink);
        EXPECT_EQ(sink.renderText(), "");
    }
    for (const Loop &loop : namedKernels()) {
        DiagnosticSink sink;
        lintLoop(loop, loop.name, sink);
        EXPECT_EQ(sink.renderText(), "") << loop.name;
    }
}

TEST(LintClean, CompiledArtifactsAuditClean)
{
    const Compiled &c = compiled();
    ASSERT_TRUE(c.ok);
    const DiagnosticSink sink = runInput(c.input());
    EXPECT_EQ(sink.renderText(), "");
}

// --- seeded schedule defects -------------------------------------------

TEST(SeededSchedule, UnscheduledOp)
{
    const Compiled &c = compiled();
    ASSERT_TRUE(c.ok);
    ScheduleView bad = c.view;
    const OpId victim = c.ddg().liveOps().front();
    bad.placements[static_cast<size_t>(victim)].time = kUnscheduled;
    AnalysisInput in = c.input();
    in.schedule = &bad;
    const DiagnosticSink sink = runInput(in);
    EXPECT_TRUE(fired(sink, "sched.unscheduled-op"));
    bool located = false;
    for (const Diagnostic &d : sink.diagnostics()) {
        if (d.checkId == "sched.unscheduled-op" &&
            d.loc.op == victim)
            located = true;
    }
    EXPECT_TRUE(located);
}

TEST(SeededSchedule, ResourceOveruse)
{
    const Compiled &c = compiled();
    ASSERT_TRUE(c.ok);
    // Two mul ops collapsed onto the same cluster, row and unit.
    const Ddg &ddg = c.ddg();
    OpId a = kInvalidOp, b = kInvalidOp;
    for (OpId op : ddg.liveOps()) {
        if (fuClassOf(ddg.op(op).opc) != FuClass::Mul)
            continue;
        if (a == kInvalidOp)
            a = op;
        else if (b == kInvalidOp)
            b = op;
    }
    ASSERT_NE(b, kInvalidOp);
    ScheduleView bad = c.view;
    bad.placements[static_cast<size_t>(b)] =
        bad.placements[static_cast<size_t>(a)];
    AnalysisInput in = c.input();
    in.schedule = &bad;
    EXPECT_TRUE(fired(runInput(in), "sched.resource-overuse"));

    // A unit index past the machine's width is also an overuse.
    ScheduleView oob = c.view;
    oob.placements[static_cast<size_t>(a)].fuInstance = 99;
    in.schedule = &oob;
    EXPECT_TRUE(fired(runInput(in), "sched.resource-overuse"));
}

TEST(SeededSchedule, DepLatency)
{
    const Compiled &c = compiled();
    ASSERT_TRUE(c.ok);
    const Ddg &ddg = c.ddg();
    // Yank a consumer far earlier than its producer allows.
    EdgeId victim = kInvalidEdge;
    for (EdgeId e = 0; e < ddg.numEdges(); ++e) {
        if (ddg.edgeActive(e) && ddg.edge(e).distance == 0 &&
            c.view.scheduled(ddg.edge(e).src) &&
            c.view.scheduled(ddg.edge(e).dst)) {
            victim = e;
            break;
        }
    }
    ASSERT_NE(victim, kInvalidEdge);
    ScheduleView bad = c.view;
    const OpId dst = ddg.edge(victim).dst;
    bad.placements[static_cast<size_t>(dst)].time =
        c.view.at(ddg.edge(victim).src).time - 1000;
    AnalysisInput in = c.input();
    in.schedule = &bad;
    const DiagnosticSink sink = runInput(in);
    EXPECT_TRUE(fired(sink, "sched.dep-latency"));
}

TEST(SeededSchedule, HeightConsistency)
{
    // A body with a real recurrence (acc = acc * x + y), compiled
    // honestly, then audited at an II below the recurrence bound:
    // the independent height relaxation must detect the
    // positive-weight cycle that the resource-only II check cannot.
    LoopBuilder b;
    OpId ld = b.load(0);
    OpId ml = b.mul1(ld);
    OpId ad = b.add1(ml);
    b.flow(ad, ml, 1, 1);
    b.store(1, ad);
    Loop loop;
    loop.name = "recurrence";
    loop.ddg = b.take();

    MachineModel machine = MachineModel::clusteredRing(2);
    PipelineOptions po;
    po.scheduler = "dms";
    po.perf = false;
    Pipeline pipeline(po);
    CompilationContext ctx;
    ASSERT_TRUE(pipeline.run(loop, machine, ctx));
    ScheduleView view = viewOf(*ctx.result.sched.schedule);

    AnalysisInput in;
    in.machine = &machine;
    in.ddg = &ctx.scheduledDdg();
    in.schedule = &view;
    EXPECT_FALSE(fired(runInput(in), "sched.height-consistency"));

    ScheduleView bad = view;
    bad.ii = 1;
    ASSERT_LT(bad.ii, view.ii);
    in.schedule = &bad;
    EXPECT_TRUE(fired(runInput(in), "sched.height-consistency"));
}

TEST(SeededSchedule, IiLowerBound)
{
    const Compiled &c = compiled();
    ASSERT_TRUE(c.ok);
    // fir8 has 8 muls; one mul unit per ring cluster makes the
    // resource bound at least 2, so II=1 must be rejected.
    ScheduleView bad = c.view;
    bad.ii = 1;
    AnalysisInput in = c.input();
    in.schedule = &bad;
    in.queues = nullptr; // depth recomputation is not under test
    in.sharing = nullptr;
    in.kernel = nullptr;
    in.kernelText = nullptr;
    EXPECT_TRUE(fired(runInput(in), "sched.ii-lower-bound"));
}

TEST(SeededSchedule, CommHop)
{
    const Compiled &c = compiled();
    ASSERT_TRUE(c.ok);
    const Ddg &ddg = c.ddg();
    // Teleport a producer two ring hops away from its consumer.
    EdgeId victim = kInvalidEdge;
    for (EdgeId e = 0; e < ddg.numEdges(); ++e) {
        if (ddg.edgeActive(e) &&
            ddg.edge(e).kind == DepKind::Flow &&
            c.view.scheduled(ddg.edge(e).src) &&
            c.view.scheduled(ddg.edge(e).dst)) {
            victim = e;
            break;
        }
    }
    ASSERT_NE(victim, kInvalidEdge);
    const OpId src = ddg.edge(victim).src;
    const OpId dst = ddg.edge(victim).dst;
    ScheduleView bad = c.view;
    bad.placements[static_cast<size_t>(src)].cluster =
        (c.view.at(dst).cluster + 2) % 4;
    AnalysisInput in = c.input();
    in.schedule = &bad;
    EXPECT_TRUE(fired(runInput(in), "sched.comm-hop"));
}

TEST(SeededSchedule, MoveShapeAndChainBroken)
{
    // Hand-built graph: load on cluster 0 feeding a store on
    // cluster 2 of a 4-ring, "carried" by a move whose own hop is
    // also illegal — and a replaced edge with no chain at all.
    LoopBuilder b;
    const OpId ld = b.load(0);
    const OpId st = b.store(1, ld);
    Ddg ddg = b.take();
    const OpId mv = ddg.addOp(Opcode::Move, OpOrigin::MoveOp);
    const EdgeId direct = 0; // ld -> st, the only builder edge
    const EdgeId hop_in = ddg.addEdge(ld, mv, DepKind::Flow, 0, 2, 0);
    const EdgeId hop_out =
        ddg.addEdge(mv, st, DepKind::Flow, 0, 1, 0);
    ddg.markReplaced(direct);

    const MachineModel machine = MachineModel::clusteredRing(4);
    ScheduleView view;
    view.ii = 1;
    view.placements.resize(static_cast<size_t>(ddg.numOps()));
    auto place = [&](OpId op, Cycle t, ClusterId cl) {
        Placement &p = view.placements[static_cast<size_t>(op)];
        p.time = t;
        p.cluster = cl;
        p.fuInstance = 0;
    };
    place(ld, 0, 0);
    place(mv, 2, 2); // two hops from the producer: bad move hop
    place(st, 3, 2);

    AnalysisInput in;
    in.machine = &machine;
    in.ddg = &ddg;
    in.schedule = &view;
    const DiagnosticSink sink = runInput(in);
    EXPECT_TRUE(fired(sink, "sched.move-shape"));

    // Dissolving the move entirely leaves the replaced edge with
    // no carrier.
    ddg.removeEdge(hop_in);
    ddg.removeEdge(hop_out);
    ddg.removeOp(mv);
    const DiagnosticSink broken = runInput(in);
    EXPECT_TRUE(fired(broken, "sched.chain-broken"));
}

// --- seeded queue-allocation defects -----------------------------------

TEST(SeededQueues, SpanDepthLocationRecountIndex)
{
    const Compiled &c = compiled();
    ASSERT_TRUE(c.ok);
    ASSERT_FALSE(c.ctx.queues.lifetimes.empty());

    // span lies about the schedule times
    QueueAllocation bad = c.ctx.queues;
    bad.lifetimes[0].span += 3;
    AnalysisInput in = c.input();
    in.queues = &bad;
    in.sharing = nullptr;
    in.kernel = nullptr;
    in.kernelText = nullptr;
    EXPECT_TRUE(fired(runInput(in), "queue.span-mismatch"));

    // an LRF lifetime claiming the wrong cluster
    QueueAllocation misplace = c.ctx.queues;
    Lifetime &lt = misplace.lifetimes[0];
    lt.cluster = (lt.cluster + 1) % 4;
    in.queues = &misplace;
    EXPECT_TRUE(fired(runInput(in), "queue.location"));

    // aggregate pressure numbers drifting from the lifetimes
    QueueAllocation drift = c.ctx.queues;
    drift.totalStorage += 1;
    in.queues = &drift;
    EXPECT_TRUE(fired(runInput(in), "queue.file-recount"));

    // two lifetimes of one file on the same queue index
    QueueAllocation overlap = c.ctx.queues;
    int first = -1;
    for (size_t i = 0; i < overlap.lifetimes.size() && first < 0;
         ++i) {
        for (size_t j = i + 1; j < overlap.lifetimes.size(); ++j) {
            const Lifetime &a = overlap.lifetimes[i];
            const Lifetime &b = overlap.lifetimes[j];
            if (a.location == b.location &&
                a.cluster == b.cluster && a.link == b.link) {
                overlap.lifetimes[j].queueIndex = a.queueIndex;
                first = static_cast<int>(i);
                break;
            }
        }
    }
    ASSERT_GE(first, 0) << "no two lifetimes share a file";
    in.queues = &overlap;
    EXPECT_TRUE(fired(runInput(in), "queue.index-overlap"));
}

TEST(SeededQueues, ShareOrderOvertake)
{
    // Two LRF lifetimes whose enter/exit deltas straddle a multiple
    // of II: A enters first but exits long after B — FIFO overtake.
    LoopBuilder b;
    const OpId ld0 = b.load(0);
    const OpId ld1 = b.load(1);
    const OpId st0 = b.store(2, ld0);
    const OpId st1 = b.store(3, ld1);
    Ddg ddg = b.take();
    const MachineModel machine = MachineModel::clusteredRing(1);

    ScheduleView view;
    view.ii = 4;
    view.placements.resize(static_cast<size_t>(ddg.numOps()));
    auto place = [&](OpId op, Cycle t, int fu) {
        Placement &p = view.placements[static_cast<size_t>(op)];
        p.time = t;
        p.cluster = 0;
        p.fuInstance = fu;
    };
    place(ld0, 0, 0); // enter 0+2=2
    place(ld1, 1, 0); // enter 1+2=3
    place(st0, 10, 0); // exit 10: A = (2, 10)
    place(st1, 3, 0);  // exit 3:  B = (3, 3)
    // dp = -1, dq = 7: k*4 in [-1, 7] for k in {0, 1} -> overtake.

    QueueAllocation alloc;
    auto lifetimeFor = [&](OpId def, OpId use, int qi) {
        Lifetime lt;
        for (EdgeId e = 0; e < ddg.numEdges(); ++e) {
            if (ddg.edge(e).src == def && ddg.edge(e).dst == use)
                lt.edge = e;
        }
        lt.def = def;
        lt.use = use;
        lt.span = view.at(use).time - view.at(def).time - 2;
        lt.depth = lt.span / view.ii + 1;
        lt.location = QueueLocation::Lrf;
        lt.cluster = 0;
        lt.queueIndex = qi;
        return lt;
    };
    alloc.lifetimes.push_back(lifetimeFor(ld0, st0, 0));
    alloc.lifetimes.push_back(lifetimeFor(ld1, st1, 1));
    alloc.lrf.resize(1);
    alloc.cqrf.resize(static_cast<size_t>(machine.numLinks()));
    for (int l = 0; l < machine.numLinks(); ++l)
        alloc.links.push_back(machine.linkAt(l));
    alloc.lrf[0].queues = 2;
    alloc.lrf[0].maxDepth =
        std::max(alloc.lifetimes[0].depth, alloc.lifetimes[1].depth);
    alloc.lrf[0].totalDepth =
        alloc.lifetimes[0].depth + alloc.lifetimes[1].depth;
    alloc.totalStorage = alloc.lrf[0].totalDepth;
    alloc.maxQueuesPerFile = 2;
    alloc.filesUsed = 1;

    SharedAllocation sharing;
    SharedQueue q;
    q.members = {0, 1};
    q.depth = alloc.lrf[0].maxDepth;
    sharing.queues.push_back(q);
    sharing.queuesBefore = 2;
    sharing.queuesAfter = 1;

    AnalysisInput in;
    in.machine = &machine;
    in.ddg = &ddg;
    in.schedule = &view;
    in.queues = &alloc;
    in.sharing = &sharing;
    const DiagnosticSink sink = runInput(in);
    EXPECT_TRUE(fired(sink, "queue.share-order"));
    // The seed is otherwise consistent: only the sharing is wrong.
    EXPECT_FALSE(fired(sink, "queue.span-mismatch"));
    EXPECT_FALSE(fired(sink, "queue.file-recount"));
}

// --- seeded kernel defects ---------------------------------------------

TEST(SeededKernel, ShapeAndAnnotation)
{
    const Compiled &c = compiled();
    ASSERT_TRUE(c.ok);

    // A slot lying about its stage breaks the shape recomputation.
    PipelinedLoop bent = c.ctx.kernel;
    bool corrupted = false;
    for (std::vector<KernelSlot> &row : bent.rows) {
        if (!row.empty()) {
            row[0].stage += 1;
            corrupted = true;
            break;
        }
    }
    ASSERT_TRUE(corrupted);
    AnalysisInput in = c.input();
    in.kernel = &bent;
    EXPECT_TRUE(fired(runInput(in), "kernel.shape"));

    // Emitted text whose queue annotations disagree with the
    // allocation (every ">cN.qM" marker vandalized).
    std::string vandalized = c.kernelText;
    size_t pos = vandalized.find(">c");
    ASSERT_NE(pos, std::string::npos);
    while (pos != std::string::npos) {
        vandalized[pos + 1] = 'x';
        pos = vandalized.find(">c", pos + 1);
    }
    in = c.input();
    in.kernelText = &vandalized;
    EXPECT_TRUE(fired(runInput(in), "kernel.queue-annotation"));
}

// --- every registered check fires somewhere ----------------------------

TEST(Coverage, EverySeededDefectUnionCoversAllChecks)
{
    std::set<std::string> all;
    for (const std::string &name : corpusCases()) {
        const std::set<std::string> ids =
            firedIds(lintCorpusFile(name));
        all.insert(ids.begin(), ids.end());
    }

    const Compiled &c = compiled();
    ASSERT_TRUE(c.ok);
    auto absorb = [&](const DiagnosticSink &sink) {
        const std::set<std::string> ids = firedIds(sink);
        all.insert(ids.begin(), ids.end());
    };

    {
        ScheduleView bad = c.view;
        bad.placements[static_cast<size_t>(
                           c.ddg().liveOps().front())]
            .time = kUnscheduled;
        AnalysisInput in = c.input();
        in.schedule = &bad;
        absorb(runInput(in));
    }
    {
        ScheduleView bad = c.view;
        const OpId mul = firstOpOfClass(c.ddg(), FuClass::Mul);
        ASSERT_NE(mul, kInvalidOp);
        bad.placements[static_cast<size_t>(mul)].fuInstance = 99;
        bad.ii = 1;
        AnalysisInput in = c.input();
        in.schedule = &bad;
        in.queues = nullptr;
        in.sharing = nullptr;
        in.kernel = nullptr;
        in.kernelText = nullptr;
        absorb(runInput(in));
    }
    {
        // dep-latency + comm-hop in one corruption
        const Ddg &ddg = c.ddg();
        ScheduleView bad = c.view;
        for (EdgeId e = 0; e < ddg.numEdges(); ++e) {
            if (ddg.edgeActive(e) &&
                ddg.edge(e).kind == DepKind::Flow) {
                const OpId dst = ddg.edge(e).dst;
                Placement &p =
                    bad.placements[static_cast<size_t>(dst)];
                p.time -= 1000;
                p.cluster = (p.cluster + 2) % 4;
                break;
            }
        }
        AnalysisInput in = c.input();
        in.schedule = &bad;
        in.queues = nullptr;
        in.sharing = nullptr;
        in.kernel = nullptr;
        in.kernelText = nullptr;
        absorb(runInput(in));
    }
    {
        LoopBuilder b;
        const OpId ld = b.load(0);
        const OpId st = b.store(1, ld);
        Ddg ddg = b.take();
        const OpId mv = ddg.addOp(Opcode::Move, OpOrigin::MoveOp);
        const EdgeId e_in =
            ddg.addEdge(ld, mv, DepKind::Flow, 0, 2, 0);
        const EdgeId e_out =
            ddg.addEdge(mv, st, DepKind::Flow, 0, 1, 0);
        ddg.markReplaced(0);
        const MachineModel machine = MachineModel::clusteredRing(4);
        ScheduleView view;
        view.ii = 1;
        view.placements.resize(static_cast<size_t>(ddg.numOps()));
        view.placements[static_cast<size_t>(ld)] = {0, 0, 0};
        view.placements[static_cast<size_t>(mv)] = {2, 2, 0};
        view.placements[static_cast<size_t>(st)] = {3, 2, 0};
        AnalysisInput in;
        in.machine = &machine;
        in.ddg = &ddg;
        in.schedule = &view;
        absorb(runInput(in));
        ddg.removeEdge(e_in);
        ddg.removeEdge(e_out);
        ddg.removeOp(mv);
        absorb(runInput(in));
    }
    {
        // Recurrence audited below its recurrence-imposed minimum
        // II: height relaxation cannot converge.
        LoopBuilder b;
        const OpId ld = b.load(0);
        const OpId ml = b.mul1(ld);
        const OpId ad = b.add1(ml);
        b.flow(ad, ml, 1, 1);
        const OpId st = b.store(1, ad);
        Ddg ddg = b.take();
        ScheduleView view;
        view.ii = 1;
        view.placements.resize(static_cast<size_t>(ddg.numOps()));
        view.placements[static_cast<size_t>(ld)] = {0, 0, 0};
        view.placements[static_cast<size_t>(ml)] = {2, 0, 0};
        view.placements[static_cast<size_t>(ad)] = {5, 0, 0};
        view.placements[static_cast<size_t>(st)] = {6, 0, 0};
        AnalysisInput in;
        in.ddg = &ddg;
        in.schedule = &view;
        absorb(runInput(in));
    }
    {
        QueueAllocation bad = c.ctx.queues;
        ASSERT_FALSE(bad.lifetimes.empty());
        bad.lifetimes[0].span += 3;
        bad.lifetimes[0].cluster =
            (bad.lifetimes[0].cluster + 1) % 4;
        bad.totalStorage += 1;
        AnalysisInput in = c.input();
        in.queues = &bad;
        in.sharing = nullptr;
        in.kernel = nullptr;
        in.kernelText = nullptr;
        absorb(runInput(in));
    }
    {
        QueueAllocation overlap = c.ctx.queues;
        bool done = false;
        for (size_t i = 0; i < overlap.lifetimes.size() && !done;
             ++i) {
            for (size_t j = i + 1; j < overlap.lifetimes.size();
                 ++j) {
                Lifetime &a = overlap.lifetimes[i];
                Lifetime &b = overlap.lifetimes[j];
                if (a.location == b.location &&
                    a.cluster == b.cluster && a.link == b.link) {
                    b.queueIndex = a.queueIndex;
                    done = true;
                    break;
                }
            }
        }
        ASSERT_TRUE(done);
        AnalysisInput in = c.input();
        in.queues = &overlap;
        in.sharing = nullptr;
        in.kernel = nullptr;
        in.kernelText = nullptr;
        absorb(runInput(in));
    }
    {
        SharedAllocation bogus = c.sharing;
        SharedQueue q;
        q.members = {0, static_cast<int>(
                            c.ctx.queues.lifetimes.size()) +
                            7};
        bogus.queues.push_back(q);
        AnalysisInput in = c.input();
        in.sharing = &bogus;
        in.kernel = nullptr;
        in.kernelText = nullptr;
        absorb(runInput(in));
    }
    {
        PipelinedLoop bent = c.ctx.kernel;
        for (std::vector<KernelSlot> &row : bent.rows) {
            if (!row.empty()) {
                row[0].stage += 1;
                break;
            }
        }
        std::string vandalized = c.kernelText;
        for (size_t pos = vandalized.find(">c");
             pos != std::string::npos;
             pos = vandalized.find(">c", pos + 1))
            vandalized[pos + 1] = 'x';
        AnalysisInput in = c.input();
        in.kernel = &bent;
        in.kernelText = &vandalized;
        absorb(runInput(in));
    }

    std::set<std::string> registered;
    for (const Check *check : CheckRegistry::instance().checks())
        registered.insert(check->id());
    EXPECT_EQ(all, registered);
}

// --- the opt-in pipeline stage -----------------------------------------

TEST(AnalyzeStage, OptInAndObservational)
{
    PipelineOptions off;
    off.regalloc = true;
    off.codegen = true;
    const std::vector<std::string> plain =
        Pipeline(off).stageNames();
    EXPECT_EQ(std::count(plain.begin(), plain.end(), "analyze"), 0);

    PipelineOptions on = off;
    on.analyze = true;
    const std::vector<std::string> audited =
        Pipeline(on).stageNames();
    EXPECT_EQ(std::count(audited.begin(), audited.end(), "analyze"),
              1);
    EXPECT_EQ(audited.back(), "analyze");

    // Observational: an analyzed sweep is bit-identical to a plain
    // one (and diagnostic-clean — any finding would panic).
    const std::vector<Loop> suite = {kernelDaxpy(),
                                     kernelDotProduct()};
    RunnerOptions ro;
    ro.maxClusters = 2;
    ro.progress = false;
    ro.jobs = 1;
    const std::vector<ConfigRun> base = runMatrix(suite, ro);
    ro.analyze = true;
    const std::vector<ConfigRun> analyzed = runMatrix(suite, ro);
    ASSERT_EQ(base.size(), analyzed.size());
    for (size_t i = 0; i < base.size(); ++i)
        EXPECT_EQ(base[i], analyzed[i]) << "config " << i;
}

} // namespace
} // namespace dms
