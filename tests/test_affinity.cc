/**
 * @file
 * Incremental affinity tracker tests: randomized equivalence
 * against the from-scratch clustersByAffinity recompute under every
 * event the DMS inner loop generates — placements, unschedules,
 * evictions, and chain splice/dissolve (which rewrites the active
 * edge set mid-schedule). Any drift between the maintained rows and
 * the recomputed ranking is a bug that would silently change
 * placement decisions, so this is fuzzed, not spot-checked.
 */

#include <gtest/gtest.h>

#include "core/affinity.h"
#include "core/chain.h"
#include "core/comm.h"
#include "support/rng.h"
#include "workload/suite.h"
#include "workload/synth.h"

namespace {

using namespace dms;

/** Compare tracker.order against the recompute for every live op. */
void
expectSameOrder(const Ddg &ddg, const PartialSchedule &ps,
                const MachineModel &machine,
                const AffinityTracker &tracker, int rotate)
{
    AffinityScratch scratch;
    std::vector<ClusterId> expected;
    std::vector<ClusterId> actual;
    for (OpId op = 0; op < ddg.numOps(); ++op) {
        if (!ddg.opLive(op))
            continue;
        clustersByAffinity(ddg, ps, machine, op, rotate, scratch,
                           expected);
        tracker.order(op, rotate, actual);
        ASSERT_EQ(expected, actual)
            << "op " << op << " rotate " << rotate;
    }
}

TEST(AffinityTracker, MatchesRecomputeUnderRandomEvents)
{
    Rng rng(0xaff1u);
    std::vector<Loop> suite = standardSuite(kSuiteSeed, 10);

    for (size_t li = 0; li < suite.size(); ++li) {
        const int nc = rng.range(4, 8);
        MachineModel machine = MachineModel::clusteredRing(nc);
        Ddg ddg = suite[li].ddg;
        PartialSchedule ps(ddg, machine, /*ii=*/rng.range(4, 12));
        ChainRegistry chains;
        AffinityTracker tracker;
        tracker.attach(ddg, ps, machine);

        std::vector<int> live_chains;
        const int steps = 120;
        for (int step = 0; step < steps; ++step) {
            int action = rng.range(0, 9);
            if (action <= 4) {
                // Place a random unscheduled non-move op.
                OpId op = rng.range(0, ddg.numOps() - 1);
                if (!ddg.opLive(op) || ps.isScheduled(op) ||
                    ddg.op(op).origin == OpOrigin::MoveOp)
                    continue;
                ClusterId c = rng.range(0, nc - 1);
                Cycle t = rng.range(0, 3 * ps.ii());
                ps.tryPlace(op, t, c); // may fail: row full
            } else if (action <= 6) {
                // Unschedule a random scheduled non-move op.
                OpId op = rng.range(0, ddg.numOps() - 1);
                if (!ddg.opLive(op) || !ps.isScheduled(op) ||
                    ddg.op(op).origin == OpOrigin::MoveOp)
                    continue;
                ps.unschedule(op);
            } else if (action <= 7) {
                // Splice a chain for a random far flow edge whose
                // producer is scheduled (what strategy 2 does).
                EdgeId e = rng.range(0, ddg.numEdges() - 1);
                if (!ddg.edgeActive(e) ||
                    ddg.edge(e).kind != DepKind::Flow)
                    continue;
                const Edge &ed = ddg.edge(e);
                if (ed.src == ed.dst || !ps.isScheduled(ed.src))
                    continue;
                // DMS never chains a chain's own sub-edge (the
                // consumer's chains dissolve before it re-enters
                // the worklist), so the fuzz stays off them too.
                if (ddg.op(ed.src).origin == OpOrigin::MoveOp ||
                    ddg.op(ed.dst).origin == OpOrigin::MoveOp)
                    continue;
                ClusterId from = ps.clusterOf(ed.src);
                ClusterId to = static_cast<ClusterId>(
                    (from + 2) % nc);
                if (machine.directlyConnected(from, to))
                    continue;
                std::vector<ClusterId> path;
                machine.routeBetween(from, to, rng.range(0, 1),
                                     path);
                if (path.empty())
                    continue;
                int cid = chains.create(
                    ddg, e, path, machine.latencyOf(Opcode::Move));
                // Schedule the moves like commitStrategy2 does.
                const Chain &ch = chains.chain(cid);
                bool placed_all = true;
                for (size_t k = 0; k < ch.moves.size(); ++k) {
                    Cycle t = rng.range(0, 2 * ps.ii());
                    if (!ps.tryPlace(ch.moves[k], t,
                                     ch.clusters[k])) {
                        placed_all = false;
                        break;
                    }
                }
                if (!placed_all) {
                    chains.dissolve(cid, ddg, ps);
                } else {
                    live_chains.push_back(cid);
                }
            } else if (action <= 8 && !live_chains.empty()) {
                // Dissolve a random live chain.
                size_t at = static_cast<size_t>(
                    rng.range(0,
                              static_cast<int>(live_chains.size()) -
                                  1));
                chains.dissolve(live_chains[at], ddg, ps);
                live_chains.erase(live_chains.begin() +
                                  static_cast<long>(at));
            }
            // else: no-op step; still verify below.

            if (step % 10 == (static_cast<int>(li) % 10)) {
                expectSameOrder(ddg, ps, machine, tracker,
                                rng.range(0, nc - 1));
            }
        }
        expectSameOrder(ddg, ps, machine, tracker, 0);
        tracker.detach();
        EXPECT_EQ(ddg.listener(), nullptr);
        EXPECT_EQ(ps.listener(), nullptr);
    }
}

TEST(AffinityTracker, ChainDissolveRestoresRows)
{
    // Deterministic splice/dissolve round trip: rows after a
    // create+dissolve pair must equal the rows before it.
    MachineModel machine = MachineModel::clusteredRing(6);
    Ddg ddg;
    OpId a = ddg.addOp(Opcode::Load);
    OpId b = ddg.addOp(Opcode::Add);
    EdgeId e = ddg.addEdge(a, b, DepKind::Flow, 0,
                           machine.latencyOf(Opcode::Load), 0);

    PartialSchedule ps(ddg, machine, 4);
    AffinityTracker tracker;
    tracker.attach(ddg, ps, machine);

    ASSERT_TRUE(ps.tryPlace(a, 0, 0));
    ASSERT_TRUE(ps.tryPlace(b, 2, 3));

    std::vector<ClusterId> before_a;
    std::vector<ClusterId> before_b;
    tracker.order(a, 0, before_a);
    tracker.order(b, 0, before_b);

    std::vector<ClusterId> path;
    machine.routeBetween(0, 3, 0, path); // 1, 2
    ChainRegistry chains;
    int cid =
        chains.create(ddg, e, path, machine.latencyOf(Opcode::Move));
    const Chain &ch = chains.chain(cid);
    for (size_t k = 0; k < ch.moves.size(); ++k)
        ASSERT_TRUE(ps.tryPlace(ch.moves[k], 1, ch.clusters[k]));
    chains.dissolve(cid, ddg, ps);

    std::vector<ClusterId> after;
    tracker.order(a, 0, after);
    EXPECT_EQ(before_a, after);
    tracker.order(b, 0, after);
    EXPECT_EQ(before_b, after);
}

} // namespace
