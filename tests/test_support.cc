/**
 * @file
 * Unit tests for the support layer: formatting, RNG, statistics,
 * tables and string helpers.
 */

#include <gtest/gtest.h>

#include "support/diag.h"
#include "support/rng.h"
#include "support/stats.h"
#include "support/strings.h"
#include "support/table.h"

namespace dms {
namespace {

TEST(Strfmt, FormatsLikePrintf)
{
    EXPECT_EQ(strfmt("a%db", 7), "a7b");
    EXPECT_EQ(strfmt("%s-%s", "x", "y"), "x-y");
    EXPECT_EQ(strfmt("%.2f", 1.5), "1.50");
}

TEST(Strfmt, EmptyAndLong)
{
    EXPECT_EQ(strfmt("%s", ""), "");
    std::string big(500, 'z');
    EXPECT_EQ(strfmt("%s", big.c_str()), big);
}

TEST(Rng, Deterministic)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    EXPECT_NE(a.next(), b.next());
}

TEST(Rng, RangeInclusiveBounds)
{
    Rng r(7);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        int v = r.range(3, 6);
        ASSERT_GE(v, 3);
        ASSERT_LE(v, 6);
        saw_lo |= v == 3;
        saw_hi |= v == 6;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, SingletonRange)
{
    Rng r(9);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(r.range(5, 5), 5);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(11);
    double sum = 0.0;
    for (int i = 0; i < 4000; ++i) {
        double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 4000.0, 0.5, 0.03);
}

TEST(Rng, ChanceExtremes)
{
    Rng r(13);
    for (int i = 0; i < 50; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

TEST(Rng, PickWeightedRespectsWeights)
{
    Rng r(17);
    std::vector<double> w{0.0, 1.0, 3.0};
    int counts[3] = {0, 0, 0};
    for (int i = 0; i < 6000; ++i)
        ++counts[r.pickWeighted(w)];
    EXPECT_EQ(counts[0], 0);
    EXPECT_GT(counts[2], counts[1]);
    EXPECT_NEAR(static_cast<double>(counts[2]) / counts[1], 3.0,
                0.5);
}

TEST(Rng, ForkIndependent)
{
    Rng a(21);
    Rng fork = a.fork();
    EXPECT_NE(a.next(), fork.next());
}

TEST(Accumulator, BasicMoments)
{
    Accumulator acc;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        acc.add(v);
    EXPECT_EQ(acc.count(), 8u);
    EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
    EXPECT_DOUBLE_EQ(acc.min(), 2.0);
    EXPECT_DOUBLE_EQ(acc.max(), 9.0);
    EXPECT_NEAR(acc.stddev(), 2.138, 0.001);
}

TEST(Accumulator, EmptyAndSingle)
{
    Accumulator acc;
    EXPECT_EQ(acc.count(), 0u);
    EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
    acc.add(3.5);
    EXPECT_DOUBLE_EQ(acc.mean(), 3.5);
    EXPECT_DOUBLE_EQ(acc.stddev(), 0.0);
}

TEST(Histogram, BucketsAndClamping)
{
    Histogram h(0, 10, 3); // [0,10) [10,20) [20,30)
    h.add(-5);
    h.add(0);
    h.add(9);
    h.add(10);
    h.add(25);
    h.add(99);
    EXPECT_EQ(h.total(), 6u);
    EXPECT_EQ(h.bucketCount(0), 3u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.bucketCount(2), 2u);
    EXPECT_DOUBLE_EQ(h.fraction(0), 0.5);
    EXPECT_EQ(h.bucketLabel(1), "[10,20)");
}

TEST(Table, AsciiAlignsColumns)
{
    Table t("demo");
    t.header({"a", "bee"});
    t.row({"1", "2"});
    t.row({"333", "4"});
    std::string s = t.ascii();
    EXPECT_NE(s.find("== demo =="), std::string::npos);
    EXPECT_NE(s.find("333"), std::string::npos);
    EXPECT_NE(s.find("bee"), std::string::npos);
}

TEST(Table, CsvRoundTrip)
{
    Table t("");
    t.header({"x", "y"});
    t.row({"1", "2"});
    EXPECT_EQ(t.csv(), "x,y\n1,2\n");
}

TEST(Table, NumberFormatting)
{
    EXPECT_EQ(Table::num(3), "3");
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::pct(0.256), "25.6%");
}

TEST(Strings, Split)
{
    auto v = split("a,b,,c", ',');
    ASSERT_EQ(v.size(), 4u);
    EXPECT_EQ(v[0], "a");
    EXPECT_EQ(v[2], "");
    EXPECT_EQ(v[3], "c");
}

TEST(Strings, JoinAndTrim)
{
    EXPECT_EQ(join({"a", "b"}, "+"), "a+b");
    EXPECT_EQ(join({}, "+"), "");
    EXPECT_EQ(trim("  x y\t"), "x y");
    EXPECT_EQ(trim(""), "");
}

TEST(Strings, ParseInt)
{
    int v = -1;
    EXPECT_TRUE(parseInt("42", v));
    EXPECT_EQ(v, 42);
    EXPECT_TRUE(parseInt(" 7 ", v));
    EXPECT_EQ(v, 7);
    EXPECT_FALSE(parseInt("x", v));
    EXPECT_FALSE(parseInt("", v));
    EXPECT_FALSE(parseInt("3x", v));
}

TEST(Strings, ParseSignedInt)
{
    int v = 0;
    EXPECT_TRUE(parseSignedInt("-17", v));
    EXPECT_EQ(v, -17);
    EXPECT_TRUE(parseSignedInt("42", v));
    EXPECT_EQ(v, 42);
    EXPECT_TRUE(parseSignedInt(" -3 ", v));
    EXPECT_EQ(v, -3);
    EXPECT_FALSE(parseSignedInt("-", v));
    EXPECT_FALSE(parseSignedInt("-3x", v));
    EXPECT_FALSE(parseSignedInt("", v));
    // Overflow in both directions is rejected, not clamped.
    EXPECT_FALSE(parseSignedInt("99999999999999", v));
    EXPECT_FALSE(parseSignedInt("-99999999999999", v));
}

TEST(Samples, PercentilesNearestRank)
{
    Samples s;
    EXPECT_EQ(s.percentile(50), 0.0);
    EXPECT_EQ(s.mean(), 0.0);
    for (int i = 100; i >= 1; --i)
        s.add(i); // 1..100, reverse insertion order
    EXPECT_EQ(s.count(), 100u);
    EXPECT_DOUBLE_EQ(s.percentile(50), 50.0);
    EXPECT_DOUBLE_EQ(s.percentile(99), 99.0);
    EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
    EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 100.0);
    EXPECT_DOUBLE_EQ(s.mean(), 50.5);
}

TEST(Samples, ReservoirCapBoundsMemoryKeepsExactMoments)
{
    Samples s(10);
    for (int i = 1; i <= 1000; ++i)
        s.add(i);
    // count/mean/max are exact over everything added; percentiles
    // come from the 10-sample reservoir but stay in range.
    EXPECT_EQ(s.count(), 1000u);
    EXPECT_DOUBLE_EQ(s.mean(), 500.5);
    EXPECT_DOUBLE_EQ(s.max(), 1000.0);
    double p50 = s.percentile(50);
    EXPECT_GE(p50, 1.0);
    EXPECT_LE(p50, 1000.0);
}

} // namespace
} // namespace dms
