/**
 * @file
 * Declarative machine description tests: canonical round-trips,
 * factory equivalence of the runner's sweep templates, template
 * expansion, topology semantics of the mesh/crossbar variants, and
 * rejection of malformed input with line-numbered errors.
 */

#include <gtest/gtest.h>

#include "eval/runner.h"
#include "machine/desc.h"

namespace {

using namespace dms;

MachineModel
parseOk(const std::string &text)
{
    MachineModel m = MachineModel::unclustered(1);
    std::string error;
    EXPECT_TRUE(machineFromText(text, m, error)) << error;
    return m;
}

std::string
parseError(const std::string &text)
{
    MachineModel m = MachineModel::unclustered(1);
    std::string error;
    EXPECT_FALSE(machineFromText(text, m, error))
        << "accepted: " << text;
    return error;
}

TEST(MachineDesc, RoundTripsCanonicalForm)
{
    MachineModel ring = MachineModel::clusteredRing(4, 2);
    ring.setName("ring4");
    ring.latency().set(Opcode::Mul, 4);

    MachineModel wide = MachineModel::unclustered(6);

    MachineModel mesh = MachineModel::custom(
        6, RegFileKind::Queues, {1, 1, 1, 1}, TopologyKind::Mesh,
        2, 3);
    mesh.setName("mesh2x3");

    MachineModel xbar = MachineModel::custom(
        5, RegFileKind::Queues, {2, 1, 1, 1},
        TopologyKind::Crossbar);

    for (const MachineModel &m : {ring, wide, mesh, xbar}) {
        MachineModel back = parseOk(machineToText(m));
        EXPECT_EQ(m, back) << machineToText(m);
    }
}

TEST(MachineDesc, DefaultsMatchSingleConventionalCluster)
{
    MachineModel m = parseOk("clusters 1\n");
    EXPECT_EQ(m, MachineModel::unclustered(1));
}

TEST(MachineDesc, SweepTemplatesMatchFactories)
{
    for (int c = 1; c <= 10; ++c) {
        MachineModel clustered = parseOk(
            expandMachineTemplate(kClusteredMachineTemplate, c));
        EXPECT_EQ(clustered, MachineModel::clusteredRing(c));

        MachineModel unclustered = parseOk(
            expandMachineTemplate(kUnclusteredMachineTemplate, c));
        EXPECT_EQ(unclustered, MachineModel::unclustered(c));
    }
}

TEST(MachineDesc, TemplateExpandsEveryPlaceholder)
{
    EXPECT_EQ(expandMachineTemplate("fus ldst=$C add=$C\n", 12),
              "fus ldst=12 add=12\n");
    EXPECT_EQ(expandMachineTemplate("no placeholder", 3),
              "no placeholder");
    EXPECT_EQ(expandMachineTemplate("$C", 7), "7");
}

TEST(MachineDesc, CommentsAndBlankLinesIgnored)
{
    MachineModel m = parseOk("# header\n\n"
                             "clusters 2   # trailing comment\n"
                             "regfile queues\n"
                             "fus copy=1\n");
    EXPECT_EQ(m.numClusters(), 2);
    EXPECT_TRUE(m.clustered());
    EXPECT_EQ(m.fusPerCluster(FuClass::LdSt), 1); // default kept
}

TEST(MachineDesc, MeshTopologySemantics)
{
    MachineModel m = parseOk("clusters 9\n"
                             "topology mesh 3x3\n"
                             "regfile queues\n"
                             "fus copy=1\n");
    EXPECT_EQ(m.topology(), TopologyKind::Mesh);
    // Cluster ids are row-major: 0 1 2 / 3 4 5 / 6 7 8.
    EXPECT_EQ(m.distance(0, 4), 2);
    EXPECT_EQ(m.distance(0, 8), 2); // torus wrap both dims
    EXPECT_TRUE(m.directlyConnected(0, 2)); // column wrap
    EXPECT_TRUE(m.directlyConnected(0, 6)); // row wrap

    // Dimension-order routes: 0 -> 4 via column-first (route 0)
    // passes cluster 1; row-first (route 1) passes cluster 3.
    std::vector<ClusterId> path;
    m.routeBetween(0, 4, 0, path);
    ASSERT_EQ(path.size(), 1u);
    EXPECT_EQ(path[0], 1);
    m.routeBetween(0, 4, 1, path);
    ASSERT_EQ(path.size(), 1u);
    EXPECT_EQ(path[0], 3);
    EXPECT_EQ(m.routeLength(0, 4, 0), 2);
    EXPECT_EQ(m.routeLength(0, 4, 1), 2);
}

TEST(MachineDesc, CrossbarIsFullyConnected)
{
    MachineModel m = parseOk("clusters 8\n"
                             "topology crossbar\n"
                             "regfile queues\n"
                             "fus copy=1\n");
    std::vector<ClusterId> path;
    for (ClusterId a = 0; a < 8; ++a) {
        for (ClusterId b = 0; b < 8; ++b) {
            EXPECT_TRUE(m.directlyConnected(a, b));
            EXPECT_EQ(m.distance(a, b), a == b ? 0 : 1);
            m.routeBetween(a, b, 0, path);
            EXPECT_TRUE(path.empty());
        }
    }
}

TEST(MachineDesc, RejectsMalformedInput)
{
    // Each entry: input, substring expected in the error.
    const struct
    {
        const char *text;
        const char *expect;
    } cases[] = {
        {"bogus 1\n", "unknown key"},
        {"clusters 0\n", "positive integer"},
        {"clusters x\n", "positive integer"},
        {"clusters 4 extra\n", "positive integer"},
        {"clusters 2\nclusters 3\n", "duplicate"},
        {"topology blob\n", "topology must be"},
        {"topology mesh 2\n", "mesh dims"},
        {"topology mesh axb\n", "mesh dims"},
        {"clusters 5\ntopology mesh 2x2\nregfile queues\n"
         "fus copy=1\n",
         "does not cover"},
        {"regfile whatever\n", "regfile must be"},
        {"fus\n", "class=count"},
        {"fus bogus=1\n", "unknown FU class"},
        {"fus ldst=65\n", "out of range"},
        {"fus ldst=-1\n", "out of range"},
        {"fus ldst\n", "malformed"},
        {"latency nop=3\n", "unknown opcode"},
        {"latency mul=-1\n", "not a non-negative"},
        {"machine a b\n", "exactly one name"},
        {"clusters 4\nregfile queues\nfus copy=0\n",
         "needs copy units"},
    };
    for (const auto &c : cases) {
        std::string err = parseError(c.text);
        EXPECT_NE(err.find(c.expect), std::string::npos)
            << "input: " << c.text << "\nerror: " << err;
    }
    // Errors carry a line number.
    EXPECT_NE(parseError("clusters 2\nbogus 1\n").find("line 2"),
              std::string::npos);
}

TEST(MachineDesc, RejectsSilentLastWriterWins)
{
    // A repeated fus class or latency opcode used to be accepted
    // with the later entry silently overwriting the earlier one —
    // exactly the kind of typo ("fus ldst=1 ldst=2" for "add=2")
    // that then schedules on a machine the author never described.
    std::string err = parseError("fus ldst=1 ldst=2\n");
    EXPECT_NE(err.find("duplicate FU class 'ldst'"),
              std::string::npos)
        << err;
    EXPECT_NE(err.find("line 1"), std::string::npos) << err;

    err = parseError("latency mul=3 mul=4\n");
    EXPECT_NE(err.find("duplicate latency for opcode 'mul'"),
              std::string::npos)
        << err;

    // Also across separate latency lines.
    err = parseError("latency mul=3\nlatency mul=4\n");
    EXPECT_NE(err.find("line 2"), std::string::npos) << err;
    EXPECT_NE(err.find("duplicate latency"), std::string::npos)
        << err;

    // Distinct opcodes and classes on several lines stay legal.
    MachineModel m = parseOk("clusters 1\n"
                             "fus ldst=2 add=3\n"
                             "latency mul=3\n"
                             "latency add=2\n");
    EXPECT_EQ(m.fusPerCluster(FuClass::LdSt), 2);
    EXPECT_EQ(m.latencyOf(Opcode::Mul), 3);
    EXPECT_EQ(m.latencyOf(Opcode::Add), 2);
}

TEST(MachineDesc, QueueFileMeshAndCrossbarAreHonoured)
{
    // `regfile queues` used to parse on a mesh and then be
    // silently ignored by the regalloc stage; it is a first-class
    // combination now, so the parser must hand back the queue-file
    // machine with its per-link structure intact.
    MachineModel mesh = parseOk("clusters 6\n"
                                "topology mesh 2x3\n"
                                "regfile queues\n"
                                "fus ldst=1 add=1 mul=1 copy=1\n");
    EXPECT_TRUE(mesh.clustered());
    EXPECT_EQ(mesh.regFileKind(), RegFileKind::Queues);
    // rows=2 contributes one link per cluster, cols=3 two.
    EXPECT_EQ(mesh.linksPerCluster(), 3);
    EXPECT_EQ(mesh.numLinks(), 18);

    MachineModel xbar = parseOk("clusters 4\n"
                                "topology crossbar\n"
                                "regfile queues\n"
                                "fus ldst=1 add=1 mul=1 copy=1\n");
    EXPECT_TRUE(xbar.clustered());
    EXPECT_EQ(xbar.numLinks(), 12);
}

TEST(MachineDesc, CrossLineErrorsPointAtTheOffendingLine)
{
    // The mesh/cluster mismatch is only detectable at end of
    // parse, but the diagnostic still names the topology line.
    std::string err = parseError("clusters 5\n"
                                 "topology mesh 2x2\n"
                                 "regfile queues\n"
                                 "fus copy=1\n");
    EXPECT_NE(err.find("line 2"), std::string::npos) << err;
    EXPECT_NE(err.find("does not cover"), std::string::npos) << err;

    // A queue-file machine without copy units: blamed on the
    // regfile line that demanded the queues.
    err = parseError("clusters 6\n"
                     "topology mesh 2x3\n"
                     "regfile queues\n"
                     "fus copy=0\n");
    EXPECT_NE(err.find("line 3"), std::string::npos) << err;
    EXPECT_NE(err.find("needs copy units"), std::string::npos)
        << err;
}

} // namespace
