/**
 * @file
 * The schedule verifier must catch every class of illegality it
 * claims to check: these tests construct broken schedules by hand.
 */

#include <gtest/gtest.h>

#include "sched/verifier.h"
#include "workload/kernels.h"

namespace dms {
namespace {

bool
mentions(const std::vector<std::string> &problems, const char *what)
{
    for (const auto &p : problems) {
        if (p.find(what) != std::string::npos)
            return true;
    }
    return false;
}

struct Fixture
{
    Fixture() : machine(MachineModel::clusteredRing(4))
    {
        LoopBuilder b;
        ld = b.load(0);
        ad = b.add1(ld);
        st = b.store(1, ad);
        ddg = b.take();
    }

    MachineModel machine;
    Ddg ddg;
    OpId ld, ad, st;
};

TEST(Verifier, AcceptsLegalSchedule)
{
    Fixture f;
    PartialSchedule ps(f.ddg, f.machine, 2);
    ASSERT_TRUE(ps.tryPlace(f.ld, 0, 0));
    ASSERT_TRUE(ps.tryPlace(f.ad, 2, 1));
    ASSERT_TRUE(ps.tryPlace(f.st, 3, 1));
    EXPECT_TRUE(verifySchedule(f.ddg, f.machine, ps).empty());
}

TEST(Verifier, FlagsIncomplete)
{
    Fixture f;
    PartialSchedule ps(f.ddg, f.machine, 2);
    ASSERT_TRUE(ps.tryPlace(f.ld, 0, 0));
    auto problems = verifySchedule(f.ddg, f.machine, ps);
    EXPECT_TRUE(mentions(problems, "not scheduled"));

    VerifyOptions opts;
    opts.requireComplete = false;
    EXPECT_TRUE(
        verifySchedule(f.ddg, f.machine, ps, opts).empty());
}

TEST(Verifier, FlagsDependenceViolation)
{
    Fixture f;
    PartialSchedule ps(f.ddg, f.machine, 2);
    ASSERT_TRUE(ps.tryPlace(f.ld, 0, 0));
    ASSERT_TRUE(ps.tryPlace(f.ad, 1, 0)); // needs load+2
    ASSERT_TRUE(ps.tryPlace(f.st, 5, 0)); // row 1: no L/S clash
    auto problems = verifySchedule(f.ddg, f.machine, ps);
    EXPECT_TRUE(mentions(problems, "violated"));
}

TEST(Verifier, DistanceCreditsAllowEarlyConsumer)
{
    // Consumer before producer is fine when carried: t(dst) >=
    // t(src) + lat - II*d.
    LoopBuilder b;
    OpId x = b.load(0);
    OpId a = b.add1(x);
    b.flow(a, a, 1, 1);
    b.store(1, a);
    Ddg g = b.take();
    MachineModel m = MachineModel::clusteredRing(1);
    PartialSchedule ps(g, m, 3);
    ASSERT_TRUE(ps.tryPlace(0, 0, 0)); // load
    ASSERT_TRUE(ps.tryPlace(1, 2, 0)); // add; self dep 2>=2+1-3 ok
    ASSERT_TRUE(ps.tryPlace(2, 4, 0)); // store (row 1, no clash)
    EXPECT_TRUE(verifySchedule(g, m, ps).empty());
}

TEST(Verifier, FlagsCommunicationConflict)
{
    Fixture f;
    PartialSchedule ps(f.ddg, f.machine, 2);
    ASSERT_TRUE(ps.tryPlace(f.ld, 0, 0));
    ASSERT_TRUE(ps.tryPlace(f.ad, 2, 2)); // distance 2 on a 4-ring
    ASSERT_TRUE(ps.tryPlace(f.st, 3, 2));
    auto problems = verifySchedule(f.ddg, f.machine, ps);
    EXPECT_TRUE(mentions(problems, "spans distance"));

    VerifyOptions opts;
    opts.checkCommunication = false;
    EXPECT_TRUE(
        verifySchedule(f.ddg, f.machine, ps, opts).empty());
}

TEST(Verifier, UnclusteredHasNoCommRules)
{
    Loop k = kernelDaxpy();
    MachineModel m = MachineModel::unclustered(4);
    PartialSchedule ps(k.ddg, m, 1);
    ASSERT_TRUE(ps.tryPlace(0, 0, 0));
    ASSERT_TRUE(ps.tryPlace(1, 0, 0));
    ASSERT_TRUE(ps.tryPlace(2, 2, 0));
    ASSERT_TRUE(ps.tryPlace(3, 4, 0));
    ASSERT_TRUE(ps.tryPlace(4, 5, 0));
    EXPECT_TRUE(verifySchedule(k.ddg, m, ps).empty());
}

TEST(Verifier, FlagsReplacedEdgeWithoutChain)
{
    Fixture f;
    PartialSchedule ps(f.ddg, f.machine, 2);
    f.ddg.markReplaced(0); // ld -> ad hidden, no moves added
    ASSERT_TRUE(ps.tryPlace(f.ld, 0, 0));
    ASSERT_TRUE(ps.tryPlace(f.ad, 2, 2));
    ASSERT_TRUE(ps.tryPlace(f.st, 3, 2));
    auto problems = verifySchedule(f.ddg, f.machine, ps);
    EXPECT_TRUE(mentions(problems, "no live move chain"));
}

TEST(Verifier, AcceptsProperChain)
{
    Fixture f;
    // Move forwarding ld(c0) -> ad(c2) via c1.
    f.ddg.markReplaced(0);
    OpId mv = f.ddg.addOp(Opcode::Move, OpOrigin::MoveOp);
    f.ddg.op(mv).origId = f.ddg.op(f.ld).origId;
    f.ddg.addEdge(f.ld, mv, DepKind::Flow, 0, 2, 0);
    f.ddg.addEdge(mv, f.ad, DepKind::Flow, 0, 1, 0);

    PartialSchedule ps(f.ddg, f.machine, 2);
    ASSERT_TRUE(ps.tryPlace(f.ld, 0, 0));
    ASSERT_TRUE(ps.tryPlace(mv, 2, 1));
    ASSERT_TRUE(ps.tryPlace(f.ad, 3, 2));
    ASSERT_TRUE(ps.tryPlace(f.st, 4, 2));
    EXPECT_TRUE(verifySchedule(f.ddg, f.machine, ps).empty());
}

TEST(Verifier, FlagsMoveHopNotOne)
{
    Fixture f;
    f.ddg.markReplaced(0);
    OpId mv = f.ddg.addOp(Opcode::Move, OpOrigin::MoveOp);
    f.ddg.addEdge(f.ld, mv, DepKind::Flow, 0, 2, 0);
    f.ddg.addEdge(mv, f.ad, DepKind::Flow, 0, 1, 0);

    PartialSchedule ps(f.ddg, f.machine, 2);
    ASSERT_TRUE(ps.tryPlace(f.ld, 0, 0));
    ASSERT_TRUE(ps.tryPlace(mv, 2, 0)); // same cluster as producer!
    ASSERT_TRUE(ps.tryPlace(f.ad, 3, 1));
    ASSERT_TRUE(ps.tryPlace(f.st, 4, 1));
    auto problems = verifySchedule(f.ddg, f.machine, ps);
    EXPECT_TRUE(mentions(problems, "not one hop"));
}

TEST(Verifier, FlagsMoveWithWrongDegree)
{
    Fixture f;
    OpId mv = f.ddg.addOp(Opcode::Move, OpOrigin::MoveOp);
    // No flow edges at all.
    PartialSchedule ps(f.ddg, f.machine, 2);
    ASSERT_TRUE(ps.tryPlace(f.ld, 0, 0));
    ASSERT_TRUE(ps.tryPlace(f.ad, 2, 1));
    ASSERT_TRUE(ps.tryPlace(f.st, 3, 1));
    ASSERT_TRUE(ps.tryPlace(mv, 0, 2));
    auto problems = verifySchedule(f.ddg, f.machine, ps);
    EXPECT_TRUE(mentions(problems, "flow ins"));
}

TEST(Verifier, ChecksReservationAgreement)
{
    // Legal placements always agree with the table (the structure
    // enforces it); spot-check the bookkeeping on a real schedule.
    Fixture f;
    PartialSchedule ps(f.ddg, f.machine, 2);
    ASSERT_TRUE(ps.tryPlace(f.ld, 0, 0));
    ASSERT_TRUE(ps.tryPlace(f.ad, 2, 0));
    ASSERT_TRUE(ps.tryPlace(f.st, 3, 0));
    const Placement &p = ps.placement(f.ld);
    EXPECT_EQ(ps.reservations().at(p.cluster, FuClass::LdSt,
                                   p.fuInstance, 0),
              f.ld);
    EXPECT_TRUE(verifySchedule(f.ddg, f.machine, ps).empty());
}

TEST(Verifier, CheckScheduleDiesOnIllegal)
{
    Fixture f;
    PartialSchedule ps(f.ddg, f.machine, 2);
    EXPECT_DEATH(checkSchedule(f.ddg, f.machine, ps),
                 "illegal schedule");
}

} // namespace
} // namespace dms
