/**
 * @file
 * Adversarial stress for DMS backtracking and chain dissolution —
 * the paper's "special attention must be paid in the implementation
 * of the backtracking procedures" machinery. Tight budgets, tiny
 * IIs, hostile graph shapes and repeated scheduling keep evicting
 * moves, producers and consumers; every outcome must stay legal and
 * execute correctly.
 */

#include <gtest/gtest.h>

#include "core/dms.h"
#include "ir/prepass.h"
#include "ir/verify.h"
#include "sched/verifier.h"
#include "sim/exec.h"
#include "workload/kernels.h"
#include "workload/synth.h"

namespace dms {
namespace {

/** Every op scheduled, no move leaked, chains intact, sim exact. */
void
expectFullyLegal(const DmsOutcome &out, const MachineModel &m,
                 const char *what)
{
    ASSERT_TRUE(out.sched.ok) << what;
    auto problems =
        verifySchedule(*out.ddg, m, *out.sched.schedule);
    ASSERT_TRUE(problems.empty()) << what << ": " << problems[0];

    // No tombstoned move may still be referenced by a live edge,
    // and every live move is scheduled (moves never wait).
    for (OpId id = 0; id < out.ddg->numOps(); ++id) {
        if (!out.ddg->opLive(id))
            continue;
        if (out.ddg->op(id).origin == OpOrigin::MoveOp) {
            EXPECT_TRUE(out.sched.schedule->isScheduled(id)) << what;
        }
    }
    // Replaced edges and their chains are consistent (structural
    // verify on the transformed graph).
    EXPECT_TRUE(verifyDdg(*out.ddg).empty()) << what;

    auto sim = simulateAndCheck(*out.ddg, m, *out.sched.schedule, 9);
    EXPECT_TRUE(sim.empty())
        << what << ": " << (sim.empty() ? "" : sim[0]);
}

/**
 * A comb: one producer chain stretched across the ring with
 * consumers joining values born far apart — maximal chain traffic.
 */
Ddg
combBody(int teeth)
{
    LoopBuilder b;
    std::vector<OpId> loads;
    for (int i = 0; i < teeth; ++i)
        loads.push_back(b.load(i));
    // Pair first with last, second with second-to-last, ...
    std::vector<OpId> joins;
    for (int i = 0; i < teeth / 2; ++i)
        joins.push_back(
            b.add(loads[static_cast<size_t>(i)],
                  loads[static_cast<size_t>(teeth - 1 - i)]));
    OpId acc = joins[0];
    for (size_t i = 1; i < joins.size(); ++i)
        acc = b.add(acc, joins[i]);
    b.store(teeth, acc);
    Ddg g = b.take();
    singleUsePrepass(g, 1);
    return g;
}

TEST(Backtrack, CombUnderMinimalBudget)
{
    for (int clusters : {5, 7, 10}) {
        MachineModel m = MachineModel::clusteredRing(clusters);
        DmsParams p;
        p.budgetRatio = 1; // constant churn, many II attempts
        p.restartsPerII = 1;
        DmsOutcome out = scheduleDms(combBody(12), m, p);
        expectFullyLegal(out, m,
                         strfmt("comb @%d", clusters).c_str());
    }
}

TEST(Backtrack, CombWithScarceCopyUnits)
{
    // One copy unit and a small II leave almost no chain slots:
    // strategy 2 must fail over to strategy 3 often.
    MachineModel m = MachineModel::clusteredRing(8);
    DmsOutcome out = scheduleDms(combBody(16), m);
    expectFullyLegal(out, m, "comb16 @8");
    EXPECT_GT(out.sched.movesInserted, 0);
}

TEST(Backtrack, RoundRobinS3MaximizesCommEjections)
{
    // RoundRobin deliberately picks conflicting clusters, forcing
    // the communication-ejection path of strategy 3 constantly.
    DmsParams p;
    p.s3Policy = S3ClusterPolicy::RoundRobin;
    p.enableChains = false; // no escape via chains
    p.budgetRatio = 2;
    for (int clusters : {4, 6, 8}) {
        MachineModel m = MachineModel::clusteredRing(clusters);
        DmsOutcome out = scheduleDms(combBody(10), m, p);
        expectFullyLegal(
            out, m, strfmt("rr nochain @%d", clusters).c_str());
        EXPECT_EQ(out.sched.movesInserted, 0);
    }
}

TEST(Backtrack, CopyHeavyBodiesOnCopyStarvedRings)
{
    // Fan-out-heavy graph: the pre-pass floods the copy units the
    // chains also need, exercising the copy-class no-eviction path
    // in commitStrategy2.
    LoopBuilder b;
    OpId x = b.load(0);
    OpId y = b.mul1(x);
    std::vector<OpId> sinks;
    for (int i = 0; i < 7; ++i) {
        OpId a = b.add1(y);
        b.flow(x, a, 1, 0);
        sinks.push_back(a);
    }
    OpId acc = sinks[0];
    for (size_t i = 1; i < sinks.size(); ++i)
        acc = b.add(acc, sinks[i]);
    b.store(1, acc);
    Ddg g = b.take();
    singleUsePrepass(g, 1);
    DdgVerifyOptions opts;
    opts.maxFlowFanout = 2;
    ASSERT_TRUE(verifyDdg(g, opts).empty());

    for (int clusters : {4, 6, 10}) {
        MachineModel m = MachineModel::clusteredRing(clusters);
        DmsOutcome out = scheduleDms(g, m);
        expectFullyLegal(
            out, m, strfmt("copyheavy @%d", clusters).c_str());
    }
}

TEST(Backtrack, CarriedEdgesThroughChains)
{
    // Loop-carried far edges: the chain's first sub-edge inherits
    // the distance, so evictions must restore it exactly.
    LoopBuilder b;
    std::vector<OpId> loads;
    for (int i = 0; i < 10; ++i)
        loads.push_back(b.load(i));
    // Carried join of values from 2 iterations ago.
    OpId j = b.add(loads[0], loads[9]);
    OpId k = b.add1(j);
    b.flow(loads[4], k, 1, 2); // distance-2 use of a middle load
    OpId acc = b.add(j, k);
    b.store(10, acc);
    for (size_t i = 1; i < 9; ++i) {
        if (i != 4)
            b.store(11, loads[i]);
    }
    Ddg g = b.take();
    singleUsePrepass(g, 1);

    for (int clusters : {5, 8}) {
        MachineModel m = MachineModel::clusteredRing(clusters);
        DmsParams p;
        p.budgetRatio = 2;
        DmsOutcome out = scheduleDms(g, m, p);
        expectFullyLegal(
            out, m, strfmt("carried @%d", clusters).c_str());
    }
}

class BacktrackRandom
    : public ::testing::TestWithParam<std::tuple<int, int>>
{};

TEST_P(BacktrackRandom, HostileParamsStayCorrect)
{
    auto [seed, budget] = GetParam();
    Rng rng(static_cast<std::uint64_t>(seed) * 48271 + 3);
    SynthParams sp;
    sp.maxOps = 36;
    Loop loop = synthesizeLoop(rng, sp, seed);

    for (int clusters : {6, 9}) {
        MachineModel m = MachineModel::clusteredRing(clusters);
        Ddg body = loop.ddg;
        singleUsePrepass(body, m.latencyOf(Opcode::Copy));
        DmsParams p;
        p.budgetRatio = budget;
        p.restartsPerII = 2;
        DmsOutcome out = scheduleDms(body, m, p);
        expectFullyLegal(out, m, loop.name.c_str());
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BacktrackRandom,
    ::testing::Combine(::testing::Range(0, 12),
                       ::testing::Values(1, 3)),
    [](const auto &info) {
        return "s" + std::to_string(std::get<0>(info.param)) +
               "_b" + std::to_string(std::get<1>(info.param));
    });

TEST(Backtrack, BudgetExhaustionNeverLeaksState)
{
    // Attempts that fail must not corrupt the next attempt: run the
    // same scheduling twice and expect identical IIs (the per-II
    // DDG copy isolates attempts).
    MachineModel m = MachineModel::clusteredRing(7);
    Ddg body = combBody(14);
    DmsParams p;
    p.budgetRatio = 1;
    DmsOutcome a = scheduleDms(body, m, p);
    DmsOutcome b2 = scheduleDms(body, m, p);
    ASSERT_TRUE(a.sched.ok && b2.sched.ok);
    EXPECT_EQ(a.sched.ii, b2.sched.ii);
    EXPECT_EQ(a.sched.attempts, b2.sched.attempts);
    EXPECT_EQ(a.sched.movesInserted, b2.sched.movesInserted);
}

} // namespace
} // namespace dms
