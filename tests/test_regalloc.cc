/**
 * @file
 * Lifetime computation and queue allocation: spans, depths, and
 * file assignment on hand-checked and scheduler-produced schedules.
 */

#include <gtest/gtest.h>

#include "core/dms.h"
#include "ir/prepass.h"
#include "regalloc/queue_alloc.h"
#include "sched/ims.h"
#include "workload/kernels.h"

namespace dms {
namespace {

TEST(Lifetimes, SpanAndDepthFormula)
{
    // load(t=0, lat 2) -> store(t=5) at II=2:
    // span = 5 - 0 - 2 = 3, depth = floor(3/2)+1 = 2.
    LoopBuilder b;
    OpId ld = b.load(0);
    OpId st = b.store(1, ld);
    Ddg g = b.take();
    MachineModel m = MachineModel::clusteredRing(1);
    PartialSchedule ps(g, m, 2);
    ASSERT_TRUE(ps.tryPlace(ld, 0, 0));
    ASSERT_TRUE(ps.tryPlace(st, 5, 0));

    auto lts = computeLifetimes(g, m, ps);
    ASSERT_EQ(lts.size(), 1u);
    EXPECT_EQ(lts[0].span, 3);
    EXPECT_EQ(lts[0].depth, 2);
    EXPECT_EQ(lts[0].location, QueueLocation::Lrf);
    EXPECT_EQ(lts[0].cluster, 0);
}

TEST(Lifetimes, LoopCarriedAddsIiPerDistance)
{
    LoopBuilder b;
    OpId x = b.load(0);
    OpId acc = b.add1(x);
    b.flow(acc, acc, 1, 1);
    OpId st = b.store(1, acc);
    Ddg g = b.take();
    MachineModel m = MachineModel::clusteredRing(1);
    PartialSchedule ps(g, m, 3);
    ASSERT_TRUE(ps.tryPlace(x, 0, 0));
    ASSERT_TRUE(ps.tryPlace(acc, 2, 0));
    ASSERT_TRUE(ps.tryPlace(st, 4, 0)); // row 1: no L/S clash

    auto lts = computeLifetimes(g, m, ps);
    // Self lifetime: span = 2 + 3*1 - 2 - 1 = 2.
    bool found = false;
    for (const Lifetime &lt : lts) {
        if (lt.def == acc && lt.use == acc) {
            EXPECT_EQ(lt.span, 2);
            EXPECT_EQ(lt.depth, 1);
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(Lifetimes, CqrfDirectionMatchesRing)
{
    LoopBuilder b;
    OpId ld = b.load(0);
    OpId st = b.store(1, ld);
    Ddg g = b.take();
    MachineModel m = MachineModel::clusteredRing(4);
    PartialSchedule ps(g, m, 2);
    ASSERT_TRUE(ps.tryPlace(ld, 0, 2));
    ASSERT_TRUE(ps.tryPlace(st, 2, 1)); // 2 -> 1 is direction -1

    auto lts = computeLifetimes(g, m, ps);
    ASSERT_EQ(lts.size(), 1u);
    EXPECT_EQ(lts[0].location, QueueLocation::Cqrf);
    EXPECT_EQ(lts[0].cluster, 2);
    EXPECT_EQ(lts[0].direction, -1);
}

TEST(Lifetimes, WrapAroundBoundaryDirection)
{
    LoopBuilder b;
    OpId ld = b.load(0);
    OpId st = b.store(1, ld);
    Ddg g = b.take();
    MachineModel m = MachineModel::clusteredRing(4);
    PartialSchedule ps(g, m, 2);
    ASSERT_TRUE(ps.tryPlace(ld, 0, 3));
    ASSERT_TRUE(ps.tryPlace(st, 2, 0)); // 3 -> 0 wraps +1

    auto lts = computeLifetimes(g, m, ps);
    ASSERT_EQ(lts.size(), 1u);
    EXPECT_EQ(lts[0].direction, +1);
}

TEST(QueueAlloc, AccountsPerFile)
{
    LoopBuilder b;
    OpId ld = b.load(0);
    OpId a = b.add1(ld);
    OpId st = b.store(1, a);
    Ddg g = b.take();
    MachineModel m = MachineModel::clusteredRing(4);
    PartialSchedule ps(g, m, 2);
    ASSERT_TRUE(ps.tryPlace(ld, 0, 0));
    ASSERT_TRUE(ps.tryPlace(a, 2, 1));  // cross 0->1: CQRF+
    ASSERT_TRUE(ps.tryPlace(st, 3, 1)); // same cluster: LRF

    QueueAllocation qa = allocateQueues(g, m, ps);
    EXPECT_EQ(qa.lifetimes.size(), 2u);
    EXPECT_EQ(qa.cqrf[0].queues, 1); // cluster 0, +1 direction
    EXPECT_EQ(qa.lrf[1].queues, 1);
    EXPECT_EQ(qa.lrf[0].queues, 0);
    EXPECT_GE(qa.totalStorage, 2);
    EXPECT_FALSE(qa.summary().empty());
}

TEST(QueueAlloc, WorksOnDmsOutput)
{
    for (int clusters : {2, 4, 8}) {
        Loop k = kernelFir8();
        MachineModel m = MachineModel::clusteredRing(clusters);
        Ddg body = k.ddg;
        singleUsePrepass(body, m.latencyOf(Opcode::Copy));
        DmsOutcome out = scheduleDms(body, m);
        ASSERT_TRUE(out.sched.ok);

        QueueAllocation qa =
            allocateQueues(*out.ddg, m, *out.sched.schedule);
        // One lifetime per active flow edge.
        int active_flow = 0;
        for (EdgeId e = 0; e < out.ddg->numEdges(); ++e) {
            if (out.ddg->edgeActive(e) &&
                out.ddg->edge(e).kind == DepKind::Flow) {
                ++active_flow;
            }
        }
        EXPECT_EQ(static_cast<int>(qa.lifetimes.size()),
                  active_flow);
        for (const Lifetime &lt : qa.lifetimes) {
            EXPECT_GE(lt.span, 0);
            EXPECT_GE(lt.depth, 1);
        }
    }
}

TEST(QueueAlloc, UnclusteredEverythingIsLrf)
{
    Loop k = kernelDaxpy();
    MachineModel m = MachineModel::unclustered(2);
    SchedOutcome out = scheduleIms(k.ddg, m);
    ASSERT_TRUE(out.ok);
    QueueAllocation qa = allocateQueues(k.ddg, m, *out.schedule);
    for (const Lifetime &lt : qa.lifetimes)
        EXPECT_EQ(lt.location, QueueLocation::Lrf);
    EXPECT_EQ(qa.cqrf[0].queues + qa.cqrf[1].queues, 0);
}

TEST(QueueAlloc, DepthGrowsWithStageDistance)
{
    // The longer a value waits, the deeper its queue must be.
    Loop k = kernelFir8();
    MachineModel m = MachineModel::clusteredRing(1);
    SchedOutcome out = scheduleIms(k.ddg,
                                   MachineModel::unclustered(1));
    ASSERT_TRUE(out.ok);
    QueueAllocation qa =
        allocateQueues(k.ddg, MachineModel::unclustered(1),
                       *out.schedule);
    int max_depth = 0;
    for (const Lifetime &lt : qa.lifetimes)
        max_depth = std::max(max_depth, lt.depth);
    // FIR at II=9 has an adder tree spanning several cycles but a
    // compact pipeline; depth must be at least 1 everywhere and
    // bounded by stage count.
    int sc = out.schedule->maxTime() / out.ii + 1;
    EXPECT_GE(max_depth, 1);
    EXPECT_LE(max_depth, sc + 1);
    (void)m;
}

} // namespace
} // namespace dms
