/**
 * @file
 * Lifetime computation and queue allocation: spans, depths, and
 * file assignment on hand-checked and scheduler-produced schedules.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "core/dms.h"
#include "ir/prepass.h"
#include "regalloc/sharing.h"
#include "sched/ims.h"
#include "workload/kernels.h"
#include "workload/synth.h"

namespace dms {
namespace {

TEST(Lifetimes, SpanAndDepthFormula)
{
    // load(t=0, lat 2) -> store(t=5) at II=2:
    // span = 5 - 0 - 2 = 3, depth = floor(3/2)+1 = 2.
    LoopBuilder b;
    OpId ld = b.load(0);
    OpId st = b.store(1, ld);
    Ddg g = b.take();
    MachineModel m = MachineModel::clusteredRing(1);
    PartialSchedule ps(g, m, 2);
    ASSERT_TRUE(ps.tryPlace(ld, 0, 0));
    ASSERT_TRUE(ps.tryPlace(st, 5, 0));

    auto lts = computeLifetimes(g, m, ps);
    ASSERT_EQ(lts.size(), 1u);
    EXPECT_EQ(lts[0].span, 3);
    EXPECT_EQ(lts[0].depth, 2);
    EXPECT_EQ(lts[0].location, QueueLocation::Lrf);
    EXPECT_EQ(lts[0].cluster, 0);
}

TEST(Lifetimes, LoopCarriedAddsIiPerDistance)
{
    LoopBuilder b;
    OpId x = b.load(0);
    OpId acc = b.add1(x);
    b.flow(acc, acc, 1, 1);
    OpId st = b.store(1, acc);
    Ddg g = b.take();
    MachineModel m = MachineModel::clusteredRing(1);
    PartialSchedule ps(g, m, 3);
    ASSERT_TRUE(ps.tryPlace(x, 0, 0));
    ASSERT_TRUE(ps.tryPlace(acc, 2, 0));
    ASSERT_TRUE(ps.tryPlace(st, 4, 0)); // row 1: no L/S clash

    auto lts = computeLifetimes(g, m, ps);
    // Self lifetime: span = 2 + 3*1 - 2 - 1 = 2.
    bool found = false;
    for (const Lifetime &lt : lts) {
        if (lt.def == acc && lt.use == acc) {
            EXPECT_EQ(lt.span, 2);
            EXPECT_EQ(lt.depth, 1);
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(Lifetimes, CqrfDirectionMatchesRing)
{
    LoopBuilder b;
    OpId ld = b.load(0);
    OpId st = b.store(1, ld);
    Ddg g = b.take();
    MachineModel m = MachineModel::clusteredRing(4);
    PartialSchedule ps(g, m, 2);
    ASSERT_TRUE(ps.tryPlace(ld, 0, 2));
    ASSERT_TRUE(ps.tryPlace(st, 2, 1)); // 2 -> 1 is direction -1

    auto lts = computeLifetimes(g, m, ps);
    ASSERT_EQ(lts.size(), 1u);
    EXPECT_EQ(lts[0].location, QueueLocation::Cqrf);
    EXPECT_EQ(lts[0].cluster, 2);
    EXPECT_EQ(lts[0].direction, -1);
}

TEST(Lifetimes, WrapAroundBoundaryDirection)
{
    LoopBuilder b;
    OpId ld = b.load(0);
    OpId st = b.store(1, ld);
    Ddg g = b.take();
    MachineModel m = MachineModel::clusteredRing(4);
    PartialSchedule ps(g, m, 2);
    ASSERT_TRUE(ps.tryPlace(ld, 0, 3));
    ASSERT_TRUE(ps.tryPlace(st, 2, 0)); // 3 -> 0 wraps +1

    auto lts = computeLifetimes(g, m, ps);
    ASSERT_EQ(lts.size(), 1u);
    EXPECT_EQ(lts[0].direction, +1);
}

TEST(QueueAlloc, AccountsPerFile)
{
    LoopBuilder b;
    OpId ld = b.load(0);
    OpId a = b.add1(ld);
    OpId st = b.store(1, a);
    Ddg g = b.take();
    MachineModel m = MachineModel::clusteredRing(4);
    PartialSchedule ps(g, m, 2);
    ASSERT_TRUE(ps.tryPlace(ld, 0, 0));
    ASSERT_TRUE(ps.tryPlace(a, 2, 1));  // cross 0->1: CQRF+
    ASSERT_TRUE(ps.tryPlace(st, 3, 1)); // same cluster: LRF

    QueueAllocation qa = allocateQueues(g, m, ps);
    EXPECT_EQ(qa.lifetimes.size(), 2u);
    EXPECT_EQ(qa.cqrf[0].queues, 1); // cluster 0, +1 direction
    EXPECT_EQ(qa.lrf[1].queues, 1);
    EXPECT_EQ(qa.lrf[0].queues, 0);
    EXPECT_GE(qa.totalStorage, 2);
    EXPECT_FALSE(qa.summary().empty());
}

TEST(QueueAlloc, WorksOnDmsOutput)
{
    for (int clusters : {2, 4, 8}) {
        Loop k = kernelFir8();
        MachineModel m = MachineModel::clusteredRing(clusters);
        Ddg body = k.ddg;
        singleUsePrepass(body, m.latencyOf(Opcode::Copy));
        DmsOutcome out = scheduleDms(body, m);
        ASSERT_TRUE(out.sched.ok);

        QueueAllocation qa =
            allocateQueues(*out.ddg, m, *out.sched.schedule);
        // One lifetime per active flow edge.
        int active_flow = 0;
        for (EdgeId e = 0; e < out.ddg->numEdges(); ++e) {
            if (out.ddg->edgeActive(e) &&
                out.ddg->edge(e).kind == DepKind::Flow) {
                ++active_flow;
            }
        }
        EXPECT_EQ(static_cast<int>(qa.lifetimes.size()),
                  active_flow);
        for (const Lifetime &lt : qa.lifetimes) {
            EXPECT_GE(lt.span, 0);
            EXPECT_GE(lt.depth, 1);
        }
    }
}

TEST(QueueAlloc, UnclusteredEverythingIsLrf)
{
    Loop k = kernelDaxpy();
    MachineModel m = MachineModel::unclustered(2);
    SchedOutcome out = scheduleIms(k.ddg, m);
    ASSERT_TRUE(out.ok);
    QueueAllocation qa = allocateQueues(k.ddg, m, *out.schedule);
    for (const Lifetime &lt : qa.lifetimes)
        EXPECT_EQ(lt.location, QueueLocation::Lrf);
    EXPECT_EQ(qa.cqrf[0].queues + qa.cqrf[1].queues, 0);
}

TEST(QueueAlloc, RingResultsBitIdenticalToPrePerLinkModel)
{
    // FNV-1a over every lifetime field, per-file stat and sharing
    // decision of the DMS ring schedules, pinned to the value the
    // pre-per-link allocator produced. The ring's CQRFs must be
    // the same files in the same order (2c = +1, 2c+1 = -1) with
    // the same members — the per-link generalization is not
    // allowed to move a single queue.
    auto fnv = [](std::uint64_t h, long v) {
        for (int i = 0; i < 8; ++i) {
            h ^= static_cast<std::uint64_t>(v >> (8 * i)) & 0xff;
            h *= 1099511628211ull;
        }
        return h;
    };

    std::uint64_t h = 1469598103934665603ull;
    for (int clusters : {2, 4, 8}) {
        for (const Loop &k : namedKernels()) {
            MachineModel m = MachineModel::clusteredRing(clusters);
            Ddg body = k.ddg;
            singleUsePrepass(body, m.latencyOf(Opcode::Copy));
            DmsOutcome out = scheduleDms(body, m);
            if (!out.sched.ok)
                continue;
            QueueAllocation qa =
                allocateQueues(*out.ddg, m, *out.sched.schedule);
            for (const Lifetime &lt : qa.lifetimes) {
                h = fnv(h, lt.edge);
                h = fnv(h, lt.def);
                h = fnv(h, lt.use);
                h = fnv(h, lt.span);
                h = fnv(h, lt.depth);
                h = fnv(h, static_cast<long>(lt.location));
                h = fnv(h, lt.cluster);
                h = fnv(h, lt.direction);
            }
            for (const QueueFileStats &f : qa.lrf) {
                h = fnv(h, f.queues);
                h = fnv(h, f.maxDepth);
                h = fnv(h, f.totalDepth);
            }
            for (const QueueFileStats &f : qa.cqrf) {
                h = fnv(h, f.queues);
                h = fnv(h, f.maxDepth);
                h = fnv(h, f.totalDepth);
            }
            h = fnv(h, qa.totalStorage);
            h = fnv(h, qa.maxQueuesPerFile);

            SharedAllocation sa =
                shareQueues(qa, *out.ddg, *out.sched.schedule);
            h = fnv(h, sa.queuesBefore);
            h = fnv(h, sa.queuesAfter);
            for (const SharedQueue &q : sa.queues) {
                h = fnv(h, q.depth);
                for (int mem : q.members)
                    h = fnv(h, mem);
            }
        }
    }
    EXPECT_EQ(h, 0x555973e8cd5799afull);
}

TEST(Lifetimes, MeshLifetimeLandsOnTheCrossedLink)
{
    // Clusters 0 and 3 of a 2x3 torus mesh are row neighbours
    // (numbering distance 3, topology distance 1): the lifetime
    // lives in the CQRF of the 0->3 link, with no ring direction.
    LoopBuilder b;
    OpId ld = b.load(0);
    OpId st = b.store(1, ld);
    Ddg g = b.take();
    MachineModel m = MachineModel::custom(
        6, RegFileKind::Queues, {1, 1, 1, 1}, TopologyKind::Mesh,
        2, 3);
    PartialSchedule ps(g, m, 2);
    ASSERT_TRUE(ps.tryPlace(ld, 0, 0));
    ASSERT_TRUE(ps.tryPlace(st, 2, 3));

    auto lts = computeLifetimes(g, m, ps);
    ASSERT_EQ(lts.size(), 1u);
    EXPECT_EQ(lts[0].location, QueueLocation::Cqrf);
    EXPECT_EQ(lts[0].cluster, 0);
    EXPECT_EQ(lts[0].link, m.linkBetween(0, 3));
    EXPECT_EQ(lts[0].direction, 0);

    QueueAllocation qa = allocateQueues(g, m, ps);
    ASSERT_EQ(static_cast<int>(qa.cqrf.size()), m.numLinks());
    EXPECT_EQ(qa.cqrf[static_cast<size_t>(lts[0].link)].queues, 1);
    EXPECT_EQ(qa.linksUsed, 1);
    EXPECT_EQ(qa.maxQueuesPerLink, 1);
}

TEST(Lifetimes, MeshChainOccupiesEveryRouteHop)
{
    // A two-hop communication c0 -> c1 -> c4 (column then row on
    // the 2x3 torus) is two one-hop lifetimes: one queue slot on
    // every traversed link, none anywhere else.
    LoopBuilder b;
    OpId ld = b.load(0);
    OpId a = b.add1(ld);
    OpId st = b.store(1, a);
    Ddg g = b.take();
    MachineModel m = MachineModel::custom(
        6, RegFileKind::Queues, {1, 1, 1, 1}, TopologyKind::Mesh,
        2, 3);
    PartialSchedule ps(g, m, 4);
    ASSERT_TRUE(ps.tryPlace(ld, 0, 0));
    ASSERT_TRUE(ps.tryPlace(a, 2, 1));
    ASSERT_TRUE(ps.tryPlace(st, 4, 4));

    QueueAllocation qa = allocateQueues(g, m, ps);
    ASSERT_EQ(qa.lifetimes.size(), 2u);
    int hop1 = m.linkBetween(0, 1);
    int hop2 = m.linkBetween(1, 4);
    ASSERT_GE(hop1, 0);
    ASSERT_GE(hop2, 0);
    EXPECT_EQ(qa.cqrf[static_cast<size_t>(hop1)].queues, 1);
    EXPECT_EQ(qa.cqrf[static_cast<size_t>(hop2)].queues, 1);
    EXPECT_EQ(qa.linksUsed, 2);
    int total_cqrf = 0;
    for (const QueueFileStats &f : qa.cqrf)
        total_cqrf += f.queues;
    EXPECT_EQ(total_cqrf, 2);
}

TEST(Lifetimes, CrossbarMatchesRingOnAdjacentClusters)
{
    // The same placement on a 4-ring and a 4-crossbar: identical
    // spans, depths and storage; only the file naming differs
    // (ring direction vs direct link).
    LoopBuilder b1;
    OpId ld1 = b1.load(0);
    OpId st1 = b1.store(1, ld1);
    Ddg g1 = b1.take();
    MachineModel ring = MachineModel::clusteredRing(4);
    PartialSchedule psr(g1, ring, 2);
    ASSERT_TRUE(psr.tryPlace(ld1, 0, 1));
    ASSERT_TRUE(psr.tryPlace(st1, 2, 2));
    QueueAllocation qr = allocateQueues(g1, ring, psr);

    LoopBuilder b2;
    OpId ld2 = b2.load(0);
    OpId st2 = b2.store(1, ld2);
    Ddg g2 = b2.take();
    MachineModel xbar = MachineModel::custom(
        4, RegFileKind::Queues, {1, 1, 1, 1},
        TopologyKind::Crossbar);
    PartialSchedule psx(g2, xbar, 2);
    ASSERT_TRUE(psx.tryPlace(ld2, 0, 1));
    ASSERT_TRUE(psx.tryPlace(st2, 2, 2));
    QueueAllocation qx = allocateQueues(g2, xbar, psx);

    ASSERT_EQ(qr.lifetimes.size(), 1u);
    ASSERT_EQ(qx.lifetimes.size(), 1u);
    EXPECT_EQ(qr.lifetimes[0].span, qx.lifetimes[0].span);
    EXPECT_EQ(qr.lifetimes[0].depth, qx.lifetimes[0].depth);
    EXPECT_EQ(qx.lifetimes[0].location, QueueLocation::Cqrf);
    EXPECT_EQ(qx.lifetimes[0].link, xbar.linkBetween(1, 2));
    EXPECT_EQ(qx.lifetimes[0].direction, 0);
    EXPECT_EQ(qr.totalStorage, qx.totalStorage);
    EXPECT_EQ(qr.maxQueuesPerFile, qx.maxQueuesPerFile);

    // And a pair that is distant on the ring is still one hop on
    // the crossbar: the lifetime is legal there.
    LoopBuilder b3;
    OpId ld3 = b3.load(0);
    OpId st3 = b3.store(1, ld3);
    Ddg g3 = b3.take();
    PartialSchedule far(g3, xbar, 2);
    ASSERT_TRUE(far.tryPlace(ld3, 0, 0));
    ASSERT_TRUE(far.tryPlace(st3, 2, 2));
    QueueAllocation qf = allocateQueues(g3, xbar, far);
    ASSERT_EQ(qf.lifetimes.size(), 1u);
    EXPECT_EQ(qf.lifetimes[0].link, xbar.linkBetween(0, 2));
}

TEST(QueueAlloc, FuzzPerLinkPressureMatchesBruteForceRecount)
{
    // Random loops, every topology: the allocator's per-file stats
    // must equal a direct recount over the scheduled flow edges,
    // and queue indices must enumerate each file densely.
    std::vector<MachineModel> machines;
    machines.push_back(MachineModel::clusteredRing(4));
    machines.push_back(MachineModel::custom(
        6, RegFileKind::Queues, {1, 1, 1, 1}, TopologyKind::Mesh,
        2, 3));
    machines.push_back(MachineModel::custom(
        5, RegFileKind::Queues, {1, 1, 1, 1},
        TopologyKind::Crossbar));

    int checked = 0;
    for (const Loop &k : synthesizeSuite(1234, 30)) {
        for (const MachineModel &m : machines) {
            Ddg body = k.ddg;
            singleUsePrepass(body, m.latencyOf(Opcode::Copy));
            DmsOutcome out = scheduleDms(body, m);
            if (!out.sched.ok)
                continue;
            const PartialSchedule &ps = *out.sched.schedule;
            const Ddg &g = *out.ddg;
            QueueAllocation qa = allocateQueues(g, m, ps);

            std::vector<QueueFileStats> lrf(
                static_cast<size_t>(m.numClusters()));
            std::vector<QueueFileStats> cqrf(
                static_cast<size_t>(m.numLinks()));
            const int ii = ps.ii();
            for (EdgeId e = 0; e < g.numEdges(); ++e) {
                if (!g.edgeActive(e) ||
                    g.edge(e).kind != DepKind::Flow) {
                    continue;
                }
                const Edge &ed = g.edge(e);
                if (!ps.isScheduled(ed.src) ||
                    !ps.isScheduled(ed.dst)) {
                    continue;
                }
                int span = ps.timeOf(ed.dst) + ii * ed.distance -
                           ps.timeOf(ed.src) - ed.latency;
                int depth = span / ii + 1;
                ClusterId cs = ps.clusterOf(ed.src);
                ClusterId cd = ps.clusterOf(ed.dst);
                QueueFileStats &f =
                    cs == cd
                        ? lrf[static_cast<size_t>(cs)]
                        : cqrf[static_cast<size_t>(
                              m.linkBetween(cs, cd))];
                ++f.queues;
                f.maxDepth = std::max(f.maxDepth, depth);
                f.totalDepth += depth;
            }

            int max_link = 0, links_used = 0, storage = 0;
            for (size_t i = 0; i < lrf.size(); ++i) {
                EXPECT_EQ(qa.lrf[i].queues, lrf[i].queues);
                EXPECT_EQ(qa.lrf[i].maxDepth, lrf[i].maxDepth);
                EXPECT_EQ(qa.lrf[i].totalDepth, lrf[i].totalDepth);
                storage += lrf[i].totalDepth;
            }
            for (size_t i = 0; i < cqrf.size(); ++i) {
                EXPECT_EQ(qa.cqrf[i].queues, cqrf[i].queues);
                EXPECT_EQ(qa.cqrf[i].maxDepth, cqrf[i].maxDepth);
                EXPECT_EQ(qa.cqrf[i].totalDepth,
                          cqrf[i].totalDepth);
                max_link = std::max(max_link, cqrf[i].queues);
                links_used += cqrf[i].queues > 0;
                storage += cqrf[i].totalDepth;
            }
            EXPECT_EQ(qa.maxQueuesPerLink, max_link);
            EXPECT_EQ(qa.linksUsed, links_used);
            EXPECT_EQ(qa.totalStorage, storage);

            // queueIndex enumerates each file 0..queues-1.
            std::map<std::pair<int, int>, std::vector<int>> seen;
            for (const Lifetime &lt : qa.lifetimes) {
                int file = lt.location == QueueLocation::Lrf
                               ? lt.cluster
                               : lt.link;
                seen[{static_cast<int>(lt.location), file}]
                    .push_back(lt.queueIndex);
            }
            for (auto &[key, idxs] : seen) {
                const QueueFileStats &f =
                    key.first ==
                            static_cast<int>(QueueLocation::Lrf)
                        ? qa.lrf[static_cast<size_t>(key.second)]
                        : qa.cqrf[static_cast<size_t>(key.second)];
                EXPECT_EQ(static_cast<int>(idxs.size()), f.queues);
                std::sort(idxs.begin(), idxs.end());
                for (size_t i = 0; i < idxs.size(); ++i)
                    EXPECT_EQ(idxs[i], static_cast<int>(i));
            }
            ++checked;
        }
    }
    EXPECT_GT(checked, 30);
}

TEST(QueueAlloc, DepthGrowsWithStageDistance)
{
    // The longer a value waits, the deeper its queue must be.
    Loop k = kernelFir8();
    MachineModel m = MachineModel::clusteredRing(1);
    SchedOutcome out = scheduleIms(k.ddg,
                                   MachineModel::unclustered(1));
    ASSERT_TRUE(out.ok);
    QueueAllocation qa =
        allocateQueues(k.ddg, MachineModel::unclustered(1),
                       *out.schedule);
    int max_depth = 0;
    for (const Lifetime &lt : qa.lifetimes)
        max_depth = std::max(max_depth, lt.depth);
    // FIR at II=9 has an adder tree spanning several cycles but a
    // compact pipeline; depth must be at least 1 everywhere and
    // bounded by stage count.
    int sc = out.schedule->maxTime() / out.ii + 1;
    EXPECT_GE(max_depth, 1);
    EXPECT_LE(max_depth, sc + 1);
    (void)m;
}

} // namespace
} // namespace dms
