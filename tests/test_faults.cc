/**
 * @file
 * Fault-tolerance tests: the deterministic fault-injection plan
 * (grammar, per-site firing determinism, wildcard matching, fault
 * kinds), the hardened compile service under chaos (every request
 * one terminal status, the daemon never dies), quarantine of
 * poisoned keys with half-open probing, deadline expiry, load
 * shedding through trySubmit, the ServeStats text round-trip, and
 * a fuzz of the result cache's eviction/retirement accounting
 * against its conservation law.
 */

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/analyze.h"
#include "machine/desc.h"
#include "serve/cache.h"
#include "serve/loadgen.h"
#include "serve/service.h"
#include "support/faultinject.h"
#include "support/rng.h"
#include "support/strings.h"
#include "workload/suite.h"
#include "workload/text.h"

namespace dms {
namespace {

/** Disarm on scope exit so one test cannot poison the next. */
struct FaultGuard
{
    ~FaultGuard() { disarmFaults(); }
};

/** Canonical request for one named kernel on the paper's ring. */
CompileRequest
kernelRequest(const char *kernel)
{
    Loop loop;
    std::string error;
    EXPECT_TRUE(loadLoopSpec(
        (std::string("kernel:") + kernel).c_str(), loop, error))
        << error;
    PipelineOptions po;
    po.scheduler = "dms";
    po.regalloc = true;
    po.codegen = true;
    return makeRequest(loop, MachineModel::clusteredRing(4), po);
}

/** The final ServeStats must satisfy the lint identities. */
void
expectStatsConsistent(const CompileService &service,
                      const char *label)
{
    DiagnosticSink sink;
    lintServeStatsText(serveStatsToText(service.stats()), label,
                       sink);
    EXPECT_EQ(sink.renderText(), "") << label;
}

// --- plan grammar ------------------------------------------------------

TEST(FaultPlan, ParsesTheDocumentedGrammar)
{
    FaultPlan plan;
    std::string error;
    ASSERT_TRUE(plan.parse(
        "serve.worker.compile:0.25:1337,"
        "pipeline.*:1:42:cancel, serve.queue.push:0.5:7:error ,"
        "pipeline.unroll:0.125:9:delay=250",
        error))
        << error;
    ASSERT_EQ(plan.specs().size(), 4u);
    EXPECT_EQ(plan.specs()[0].site, "serve.worker.compile");
    EXPECT_DOUBLE_EQ(plan.specs()[0].rate, 0.25);
    EXPECT_EQ(plan.specs()[0].seed, 1337u);
    EXPECT_EQ(plan.specs()[0].kind, FaultKind::Error);
    EXPECT_EQ(plan.specs()[1].site, "pipeline.*");
    EXPECT_EQ(plan.specs()[1].kind, FaultKind::Cancel);
    EXPECT_EQ(plan.specs()[2].kind, FaultKind::Error);
    EXPECT_EQ(plan.specs()[3].kind, FaultKind::Delay);
    EXPECT_EQ(plan.specs()[3].delayMicros, 250);

    // Empty entries are tolerated; an empty plan text is legal.
    FaultPlan empty;
    EXPECT_TRUE(empty.parse("", error));
    EXPECT_TRUE(empty.parse(" , ,", error));
    EXPECT_TRUE(empty.empty());
}

TEST(FaultPlan, RejectsMalformedSpecsWithoutPartialAppend)
{
    const char *bad[] = {
        "site",                    // too few fields
        "site:0.5",                // still too few
        "site:0.5:1:error:extra",  // too many
        ":0.5:1",                  // empty site
        "site:2:1",                // rate out of [0,1]
        "site:-0.5:1",             // negative rate
        "site:frog:1",             // unparsable rate
        "site:0.5:banana",         // unparsable seed
        "site:0.5:1:bogus",        // unknown kind
        "site:0.5:1:delay=x",      // unparsable delay
    };
    for (const char *text : bad) {
        FaultPlan plan;
        std::string error;
        // A good leading entry must not survive the bad one.
        const std::string combined =
            std::string("good.site:0.5:1,") + text;
        EXPECT_FALSE(plan.parse(combined, error)) << text;
        EXPECT_FALSE(error.empty()) << text;
        EXPECT_TRUE(plan.empty()) << text;
    }
}

// --- firing semantics --------------------------------------------------

TEST(FaultPoint, FreeAndInertWhenDisarmed)
{
    ASSERT_FALSE(faultsArmed());
    EXPECT_NO_THROW(faultPoint("anything.at.all"));
    EXPECT_TRUE(faultStats().empty());
    EXPECT_EQ(faultsInjected(), 0u);
}

TEST(FaultPoint, FiringIsDeterministicPerSiteAndHitIndex)
{
    FaultGuard guard;
    FaultPlan plan;
    plan.add({"determinism.site", 0.37, 99, FaultKind::Error, 0});

    auto pattern = [&]() {
        std::vector<bool> fired;
        for (int i = 0; i < 2000; ++i) {
            bool f = false;
            try {
                faultPoint("determinism.site");
            } catch (const InjectedFault &e) {
                EXPECT_EQ(e.site(), "determinism.site");
                f = true;
            }
            fired.push_back(f);
        }
        return fired;
    };

    armFaults(plan);
    const std::vector<bool> first = pattern();
    const std::uint64_t injected_first = faultsInjected();
    disarmFaults();
    armFaults(plan); // counters reset, same seed
    const std::vector<bool> second = pattern();

    EXPECT_EQ(first, second);
    EXPECT_EQ(faultsInjected(), injected_first);
    const size_t count = static_cast<size_t>(
        std::count(first.begin(), first.end(), true));
    // ~37% of 2000; a deterministic draw, loosely bracketed.
    EXPECT_GT(count, 500u);
    EXPECT_LT(count, 1200u);

    ASSERT_EQ(faultStats().size(), 1u);
    EXPECT_EQ(faultStats()[0].site, "determinism.site");
    EXPECT_EQ(faultStats()[0].hits, 2000u);
    EXPECT_EQ(faultStats()[0].fired, count);
}

TEST(FaultPoint, RateEndpointsAndKinds)
{
    FaultGuard guard;
    FaultPlan plan;
    plan.add({"never.site", 0.0, 1, FaultKind::Error, 0});
    plan.add({"always.site", 1.0, 2, FaultKind::Error, 0});
    plan.add({"cancel.site", 1.0, 3, FaultKind::Cancel, 0});
    plan.add({"delay.site", 1.0, 4, FaultKind::Delay, 20000});
    armFaults(plan);

    // Rate 0 armed behaves like disarmed (but is observed).
    for (int i = 0; i < 100; ++i)
        EXPECT_NO_THROW(faultPoint("never.site"));
    EXPECT_THROW(faultPoint("always.site"), InjectedFault);
    EXPECT_THROW(faultPoint("cancel.site"), CancelledError);

    const auto t0 = std::chrono::steady_clock::now();
    EXPECT_NO_THROW(faultPoint("delay.site"));
    const double ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    EXPECT_GE(ms, 10.0); // 20 ms sleep, generous lower bound

    for (const FaultSiteStats &s : faultStats()) {
        if (s.site == "never.site") {
            EXPECT_EQ(s.hits, 100u);
            EXPECT_EQ(s.fired, 0u);
        }
    }
}

TEST(FaultPoint, PrefixWildcardsFirstMatchWins)
{
    FaultGuard guard;
    FaultPlan plan;
    plan.add({"pipeline.mii", 1.0, 1, FaultKind::Cancel, 0});
    plan.add({"pipeline.*", 1.0, 2, FaultKind::Error, 0});
    armFaults(plan);

    // The specific entry shadows the wildcard behind it.
    EXPECT_THROW(faultPoint("pipeline.mii"), CancelledError);
    EXPECT_THROW(faultPoint("pipeline.schedule"), InjectedFault);
    EXPECT_NO_THROW(faultPoint("serve.queue.push"));

    disarmFaults();
    FaultPlan all;
    all.add({"*", 1.0, 3, FaultKind::Error, 0});
    armFaults(all);
    EXPECT_THROW(faultPoint("anything"), InjectedFault);
}

// --- service under faults ----------------------------------------------

TEST(Faults, NoFaultAndRateZeroRunsBitIdentical)
{
    // Baseline: a never-armed service.
    CompileRequest req = kernelRequest("fir8");
    ServeOptions so;
    so.workers = 2;
    CompileService::ResultPtr base;
    {
        CompileService service(so);
        base = service.compile(req);
        ASSERT_TRUE(base->ok);
    }

    // A rate-0 plan armed across every site must not change a bit.
    FaultGuard guard;
    FaultPlan inert;
    inert.add({"*", 0.0, 7, FaultKind::Error, 0});
    armFaults(inert);
    {
        CompileService service(so);
        CompileService::ResultPtr armed = service.compile(req);
        ASSERT_TRUE(armed->ok);
        EXPECT_TRUE(armed->run == base->run);
        EXPECT_EQ(armed->kernelText, base->kernelText);
    }
    EXPECT_EQ(faultsInjected(), 0u); // observed but never fired
    disarmFaults();

    // After a chaos episode and disarm, a fresh service is again
    // bit-identical to the never-faulted baseline.
    FaultPlan chaos;
    chaos.add({"serve.worker.compile", 0.5, 11, FaultKind::Error,
               0});
    armFaults(chaos);
    {
        CompileService service(so);
        for (int i = 0; i < 8; ++i)
            service.compile(req); // some fail, some succeed
    }
    disarmFaults();
    {
        CompileService service(so);
        CompileService::ResultPtr after = service.compile(req);
        ASSERT_TRUE(after->ok);
        EXPECT_TRUE(after->run == base->run);
        EXPECT_EQ(after->kernelText, base->kernelText);
    }
}

/**
 * The chaos hammer: eight clients drive the mixed hot/cold zipf
 * load while every fault site is armed at 10-30%. The service must
 * neither crash nor hang, every request must reach exactly one
 * terminal status, and the final counters must satisfy the
 * serve.stats-consistency identities.
 */
TEST(Faults, ChaosHammerEveryRequestOneTerminalStatus)
{
    FaultGuard guard;
    FaultPlan plan;
    plan.add({"serve.cache.lookup", 0.10, 101, FaultKind::Error,
              0});
    plan.add({"serve.cache.insert", 0.10, 102, FaultKind::Error,
              0});
    plan.add({"serve.queue.push", 0.15, 103, FaultKind::Error, 0});
    plan.add({"serve.worker.compile", 0.20, 104, FaultKind::Error,
              0});
    plan.add({"pipeline.unroll", 0.15, 105, FaultKind::Delay,
              200});
    plan.add({"pipeline.schedule", 0.10, 106, FaultKind::Cancel,
              0});
    plan.add({"pipeline.*", 0.10, 107, FaultKind::Error, 0});
    armFaults(plan);

    ServeOptions so;
    so.workers = 4;
    so.queueDepth = 16;
    CompileService service(so);

    RetryPolicy policy;
    policy.maxAttempts = 3;
    policy.backoffBaseMs = 1;
    policy.backoffMaxMs = 4;
    policy.deadlineMs = 5000;
    policy.submitWaitMs = 2;

    const std::string machine_text =
        machineToText(MachineModel::clusteredRing(4));
    std::vector<std::string> hot = hotKernelTexts();
    ZipfPicker zipf(hot.size());
    constexpr int kTotal = 160;
    HammerResult res = hammerService(
        service, kTotal, /*clients=*/8, machine_text, "dms",
        0xc4a05ULL, [&](int i, Rng &rng) -> std::string {
            if (rng.range(1, 100) <= 75)
                return hot[zipf.pick(rng)];
            return coldLoopText(0xc4a05ULL, i);
        },
        policy);

    // Exactly one terminal status per request, none Invalid (the
    // generator only emits well-formed requests).
    int sum = 0;
    for (int s = 0; s < 7; ++s)
        sum += res.byStatus[s];
    EXPECT_EQ(sum, kTotal);
    EXPECT_EQ(res.count(CompileStatus::Invalid), 0);
    EXPECT_GT(res.count(CompileStatus::Ok), 0);
    EXPECT_GT(faultsInjected(), 0u);

    const ServeStats stats = service.stats();
    EXPECT_GE(stats.requests, static_cast<std::uint64_t>(kTotal));
    expectStatsConsistent(service, "chaos");

    // The daemon survived: with the plan disarmed (workers idle —
    // every future above resolved), service compiles cleanly.
    disarmFaults();
    CompileService::ResultPtr after =
        service.compile(kernelRequest("daxpy"));
    EXPECT_TRUE(after->ok) << after->error;
}

TEST(Faults, QuarantineTriggersThenProbeClears)
{
    FaultGuard guard;
    ServeOptions so;
    so.workers = 1;
    so.quarantineAfter = 2;
    so.quarantineProbe = 2;
    CompileService service(so);
    const CompileRequest req = kernelRequest("horner");

    FaultPlan plan;
    plan.add({"serve.worker.compile", 1.0, 5, FaultKind::Error,
              0});
    armFaults(plan);

    // Two consecutive failures poison the key...
    for (int i = 0; i < 2; ++i) {
        CompileService::ResultPtr r = service.compile(req);
        EXPECT_EQ(r->status, CompileStatus::Failed) << i;
        EXPECT_EQ(r->failSite, "serve.worker.compile");
    }
    // ...and the next submits are rejected without compiling.
    for (int i = 0; i < 2; ++i) {
        CompileService::ResultPtr r = service.compile(req);
        EXPECT_EQ(r->status, CompileStatus::Quarantined) << i;
    }
    EXPECT_EQ(service.stats().quarantined, 2u);

    // After quarantineProbe rejections, one half-open probe goes
    // through; with the fault gone it succeeds and clears the key.
    disarmFaults();
    CompileService::ResultPtr probe = service.compile(req);
    EXPECT_EQ(probe->status, CompileStatus::Ok) << probe->error;

    CompileService::Ticket warm = service.submit(req);
    EXPECT_EQ(warm.source, CompileService::Source::Hit);
    EXPECT_EQ(warm.future.get()->status, CompileStatus::Ok);
    expectStatsConsistent(service, "quarantine");
}

TEST(Faults, DeadlineExpiresAndKeyRetriesAfterwards)
{
    FaultGuard guard;
    FaultPlan plan;
    // 30 ms per stage boundary: the compile cannot finish inside
    // the 50 ms budget, so the worker's cancel poll must fire.
    plan.add({"pipeline.*", 1.0, 8, FaultKind::Delay, 30000});
    armFaults(plan);

    ServeOptions so;
    so.workers = 1;
    CompileService service(so);
    CompileRequest req = kernelRequest("daxpy");
    req.deadlineMs = 50;

    CompileService::Ticket ticket = service.submit(req);
    EXPECT_EQ(ticket.source, CompileService::Source::Miss);
    ASSERT_NE(ticket.cancel, nullptr);
    CompileService::ResultPtr r = ticket.future.get();
    EXPECT_EQ(r->status, CompileStatus::Expired);
    EXPECT_TRUE(r->parsed);
    EXPECT_GE(service.stats().expired, 1u);

    // The expired entry was retired: the key retries (a fresh
    // miss, not a hit on a dead entry) and now succeeds.
    disarmFaults();
    req.deadlineMs = 0;
    CompileService::Ticket again = service.submit(req);
    EXPECT_EQ(again.source, CompileService::Source::Miss);
    EXPECT_EQ(again.future.get()->status, CompileStatus::Ok);
    expectStatsConsistent(service, "deadline");
}

TEST(Faults, TrySubmitShedsWhenTheQueueStaysFull)
{
    FaultGuard guard;
    FaultPlan plan;
    // Park the single worker for 300 ms per compile.
    plan.add({"serve.worker.compile", 1.0, 6, FaultKind::Delay,
              300000});
    armFaults(plan);

    ServeOptions so;
    so.workers = 1;
    so.queueDepth = 1;
    so.shards = 1;
    CompileService service(so);

    std::vector<CompileService::Ticket> tickets;
    for (int i = 0; i < 4; ++i) {
        CompileRequest req;
        req.loopText = coldLoopText(0x5ed5ULL, i);
        req.machineText =
            machineToText(MachineModel::clusteredRing(4));
        req.options.scheduler = "dms";
        req.options.regalloc = true;
        tickets.push_back(service.trySubmit(req, /*maxWaitMs=*/0));
    }

    int shed = 0;
    int compiled = 0;
    for (CompileService::Ticket &t : tickets) {
        CompileService::ResultPtr r = t.future.get();
        if (t.source == CompileService::Source::Rejected) {
            ++shed;
            EXPECT_EQ(r->status, CompileStatus::Rejected);
            EXPECT_NE(r->error.find("queue full"),
                      std::string::npos);
        } else {
            ++compiled;
            EXPECT_EQ(r->status, CompileStatus::Ok) << r->error;
        }
    }
    // The worker holds one job and the queue one more; at least
    // two of four must have been shed, and the first (submitted
    // into an empty queue) never is.
    EXPECT_GE(shed, 2);
    EXPECT_GE(compiled, 1);

    const ServeStats stats = service.stats();
    EXPECT_EQ(stats.shed, static_cast<std::uint64_t>(shed));
    EXPECT_EQ(stats.rejected, stats.shed + stats.quarantined);
    EXPECT_TRUE(stats.degraded);
    expectStatsConsistent(service, "shed");
    disarmFaults();
}

// --- request validation (the paths that used to panic) -----------------

TEST(Validate, PanicReachableRequestsRejectedStructured)
{
    ServeOptions so;
    so.workers = 1;
    CompileService service(so);

    // An FU class the machine lacks (resMii's panic).
    CompileRequest no_mul = kernelRequest("daxpy");
    no_mul.machineText = "clusters 1\n"
                         "topology ring\n"
                         "regfile queues\n"
                         "fus ldst=1 add=1 mul=0 copy=1\n";
    CompileService::ResultPtr r = service.compile(no_mul);
    EXPECT_EQ(r->status, CompileStatus::Invalid);
    EXPECT_NE(r->error.find("MUL units"), std::string::npos)
        << r->error;

    // Unroll knobs outside their domain (unroll stage fatal).
    CompileRequest huge = kernelRequest("daxpy");
    huge.options.forceUnroll = 5000;
    r = service.compile(huge);
    EXPECT_EQ(r->status, CompileStatus::Invalid);
    EXPECT_NE(r->error.find("forceUnroll"), std::string::npos);

    CompileRequest zero = kernelRequest("daxpy");
    zero.options.unrollMaxFactor = 0;
    r = service.compile(zero);
    EXPECT_EQ(r->status, CompileStatus::Invalid);
    EXPECT_NE(r->error.find("unrollMaxFactor"),
              std::string::npos);

    CompileRequest ops = kernelRequest("daxpy");
    ops.options.unrollMaxOps = 0;
    r = service.compile(ops);
    EXPECT_EQ(r->status, CompileStatus::Invalid);
    EXPECT_NE(r->error.find("unrollMaxOps"), std::string::npos);

    // A clustered queue machine with no copy units cannot host
    // the move/copy insertion the pipeline will attempt.
    CompileRequest no_copy = kernelRequest("daxpy");
    no_copy.machineText = "clusters 2\n"
                          "topology ring\n"
                          "regfile queues\n"
                          "fus ldst=1 add=1 mul=1\n";
    r = service.compile(no_copy);
    EXPECT_EQ(r->status, CompileStatus::Invalid);

    // The service survived every rejection.
    CompileService::ResultPtr good =
        service.compile(kernelRequest("daxpy"));
    EXPECT_TRUE(good->ok) << good->error;
    EXPECT_EQ(service.stats().invalid, 5u);
    expectStatsConsistent(service, "validate");
}

// --- ServeStats text form ----------------------------------------------

TEST(ServeStatsText, RoundTripsEveryCounter)
{
    ServeStats stats;
    stats.requests = 101;
    stats.hits = 42;
    stats.coalesced = 7;
    stats.misses = 31;
    stats.invalid = 3;
    stats.failed = 9;
    stats.expired = 4;
    stats.shed = 11;
    stats.quarantined = 2;
    stats.rejected = 13;
    stats.evictions = 5;
    stats.retired = 6;
    stats.cached = 17;
    stats.degraded = true;
    stats.queueDepth = 3;
    stats.peakQueueDepth = 12;
    stats.queueCapacity = 64;

    const std::string text = serveStatsToText(stats);
    EXPECT_EQ(text.rfind("servestats v1\n", 0), 0u);

    ServeStats back;
    std::string error;
    ASSERT_TRUE(serveStatsFromText(text, back, error)) << error;
    EXPECT_EQ(back.requests, stats.requests);
    EXPECT_EQ(back.hits, stats.hits);
    EXPECT_EQ(back.coalesced, stats.coalesced);
    EXPECT_EQ(back.misses, stats.misses);
    EXPECT_EQ(back.invalid, stats.invalid);
    EXPECT_EQ(back.failed, stats.failed);
    EXPECT_EQ(back.expired, stats.expired);
    EXPECT_EQ(back.shed, stats.shed);
    EXPECT_EQ(back.quarantined, stats.quarantined);
    EXPECT_EQ(back.rejected, stats.rejected);
    EXPECT_EQ(back.evictions, stats.evictions);
    EXPECT_EQ(back.retired, stats.retired);
    EXPECT_EQ(back.cached, stats.cached);
    EXPECT_EQ(back.degraded, stats.degraded);
    EXPECT_EQ(back.queueDepth, stats.queueDepth);
    EXPECT_EQ(back.peakQueueDepth, stats.peakQueueDepth);
    EXPECT_EQ(back.queueCapacity, stats.queueCapacity);
}

TEST(ServeStatsText, RejectsMalformedText)
{
    ServeStats out;
    std::string error;
    EXPECT_FALSE(serveStatsFromText("", out, error));
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(
        serveStatsFromText("requests 3\n", out, error));
    EXPECT_FALSE(serveStatsFromText(
        "servestats v1\nbogus_key 3\n", out, error));
    EXPECT_FALSE(serveStatsFromText(
        "servestats v1\nrequests banana\n", out, error));
    EXPECT_FALSE(serveStatsFromText(
        "servestats v1\nrequestsonly\n", out, error));
    // Comments and blank lines are fine.
    EXPECT_TRUE(serveStatsFromText(
        "\nservestats v1\n# comment\n\nrequests 3\n", out, error))
        << error;
    EXPECT_EQ(out.requests, 3u);
}

// --- cache eviction/retirement accounting ------------------------------

/**
 * Conservation fuzz: every entry that enters the cache leaves it
 * through exactly one of eviction (ready), retirement (failed) or
 * residency. After every operation the recount
 *   inserted == size() + evictions() + retired()
 * must hold exactly, and no lookup may ever surface a failed
 * entry. The law is policy-independent: LRU reorders the victim
 * queue and cost-aware re-ranks it, but neither may create or
 * leak an entry, so the same fuzz runs under all three.
 */
void
conservationFuzz(EvictPolicy policy, std::uint64_t seed)
{
    ResultCache cache(/*shards=*/2, /*capacity=*/8, policy);
    Rng rng(seed);
    std::uint64_t inserted = 0;
    std::uint64_t resolved_failed = 0;
    std::vector<std::pair<std::string,
                          std::shared_ptr<CacheEntry>>>
        inflight;

    auto resolve = [&](const std::string &key,
                       const std::shared_ptr<CacheEntry> &entry) {
        const bool fail = rng.range(0, 99) < 40;
        if (fail) {
            ++resolved_failed;
            entry->failed.store(true, std::memory_order_release);
        }
        // A synthetic compile cost so the cost-aware policy has
        // something to rank by; Fifo/Lru ignore it.
        entry->costMs.store(
            static_cast<double>(rng.range(1, 500)),
            std::memory_order_relaxed);
        entry->ready.store(true, std::memory_order_release);
        entry->promise.set_value(
            std::make_shared<CompileResult>());
        // Half of the failures retire eagerly (the service path);
        // the rest are reclaimed lazily by acquire/eviction.
        if (fail && rng.range(0, 1) == 0)
            cache.retire(key, fnv1a64(key), entry);
    };

    for (int step = 0; step < 5000; ++step) {
        const std::string key =
            strfmt("key-%d", static_cast<int>(rng.range(0, 39)));
        const std::uint64_t hash = fnv1a64(key);
        const int action = static_cast<int>(rng.range(0, 99));
        if (action < 60) {
            std::shared_ptr<CacheEntry> entry;
            const ResultCache::Lookup found =
                cache.acquire(key, hash, entry);
            ASSERT_NE(entry, nullptr);
            if (found == ResultCache::Lookup::Inserted) {
                ++inserted;
                if (rng.range(0, 99) < 70)
                    resolve(key, entry);
                else
                    inflight.emplace_back(key, entry);
            } else if (found == ResultCache::Lookup::Hit) {
                EXPECT_FALSE(entry->failed.load());
                EXPECT_TRUE(entry->ready.load());
            }
        } else if (action < 90) {
            const std::shared_ptr<CacheEntry> found =
                cache.find(key, hash);
            if (found != nullptr) {
                EXPECT_FALSE(found->failed.load());
            }
        } else if (!inflight.empty()) {
            const size_t pick = static_cast<size_t>(rng.range(
                0, static_cast<int>(inflight.size()) - 1));
            resolve(inflight[pick].first, inflight[pick].second);
            inflight.erase(inflight.begin() +
                           static_cast<long>(pick));
        }
        ASSERT_EQ(inserted, cache.size() + cache.evictions() +
                                cache.retired())
            << "step " << step;
    }
    for (auto &p : inflight)
        resolve(p.first, p.second);
    EXPECT_EQ(inserted,
              cache.size() + cache.evictions() + cache.retired());
    // The fuzz actually exercised both exit paths.
    EXPECT_GT(cache.evictions(), 0u);
    EXPECT_GT(cache.retired(), 0u);
    EXPECT_GT(resolved_failed, 0u);
}

TEST(CacheAccounting, FuzzedConservationExactFifo)
{
    conservationFuzz(EvictPolicy::Fifo, 0xacc7ULL);
}

TEST(CacheAccounting, FuzzedConservationExactLru)
{
    conservationFuzz(EvictPolicy::Lru, 0x14c7ULL);
}

TEST(CacheAccounting, FuzzedConservationExactCost)
{
    conservationFuzz(EvictPolicy::Cost, 0xc057ULL);
}

} // namespace
} // namespace dms
