/**
 * @file
 * dmslint — the static-analysis front-end: lints any pipeline
 * artifact through the analysis/ check registry and exits with the
 * maximum severity found.
 *
 * Usage:
 *   dmslint [options] <target>...
 *
 * Targets:
 *   FILE           auto-detected: a machine description, a `$C`
 *                  machine sweep template, a loop body in the
 *                  workload/text format, a `servestats v1`
 *                  counter snapshot (dmsd --stats-out), a
 *                  `dmsmetrics v1` snapshot (dmsd --metrics-out),
 *                  or a trace_event JSON export (dmsd --trace-out)
 *   kernel:NAME    a built-in kernel ("kernel:fir8")
 *   kernel:*       every built-in kernel
 *
 * Options:
 *   --compile       additionally compile each loop target and audit
 *                   the schedule, queue allocation and emitted
 *                   kernel
 *   --machine FILE  machine for --compile (default: the paper's
 *                   4-cluster ring)
 *   --sched NAME    registry scheduler for --compile (default dms)
 *   --json          render diagnostics as JSON instead of text
 *   --list          list every registered check and exit
 *
 * Diagnostics go to stdout, one line per finding (nothing when
 * clean). Exit code: 0 clean, 1 worst is a note, 2 warning,
 * 3 error.
 */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analyze.h"
#include "codegen/emit.h"
#include "core/pipeline.h"
#include "machine/desc.h"
#include "regalloc/sharing.h"
#include "support/diag.h"
#include "support/strings.h"
#include "workload/text.h"

namespace {

using namespace dms;

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open '%s'", path.c_str());
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** What a target file contains, judged from its text alone. */
enum class TargetKind {
    Machine,
    Template,
    LoopText,
    ServeStats,
    Metrics,
    Trace,
};

TargetKind
detectKind(const std::string &text)
{
    // A trace export is the one non-line-keyed format: a JSON
    // array, so the first non-space byte is '['.
    for (char c : text) {
        if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
            continue;
        if (c == '[')
            return TargetKind::Trace;
        break;
    }
    if (text.find("$C") != std::string::npos)
        return TargetKind::Template;
    // A machine description opens with one of its keys, the
    // snapshot formats with their versioned headers; anything else
    // is treated as loop text (whose own first key is "loop").
    for (const std::string &raw : split(text, '\n')) {
        const std::string line = trim(raw);
        if (line.empty() || line[0] == '#')
            continue;
        const std::string key =
            line.substr(0, line.find_first_of(" \t"));
        if (key == "machine" || key == "clusters" ||
            key == "topology" || key == "regfile" || key == "fus" ||
            key == "latency")
            return TargetKind::Machine;
        if (key == "servestats")
            return TargetKind::ServeStats;
        if (key == "dmsmetrics")
            return TargetKind::Metrics;
        break;
    }
    return TargetKind::LoopText;
}

/** Compile @p loop and audit every artifact the pipeline made. */
void
auditCompiled(const Loop &loop, const MachineModel &machine,
              const std::string &sched, const std::string &subject,
              DiagnosticSink &sink)
{
    PipelineOptions po;
    po.scheduler = sched;
    po.regalloc = true;
    po.codegen = true;
    // The point of the audit is to report, not to panic first.
    po.verify = false;
    po.perf = false;
    const Pipeline pipeline(po);
    CompilationContext ctx;
    if (!pipeline.run(loop, machine, ctx))
        fatal("scheduling '%s' failed on %s", loop.name.c_str(),
              machine.describe().c_str());

    const Ddg &ddg = ctx.scheduledDdg();
    const ScheduleView view = viewOf(*ctx.result.sched.schedule);
    AnalysisInput input;
    input.machine = &machine;
    input.ddg = &ddg;
    input.schedule = &view;
    SharedAllocation sharing;
    std::string kernel_text;
    if (ctx.queuesValid) {
        input.queues = &ctx.queues;
        sharing = shareQueues(ctx.queues, ddg,
                              *ctx.result.sched.schedule);
        input.sharing = &sharing;
    }
    input.kernel = &ctx.kernel;
    kernel_text =
        emitKernel(ddg, machine, ctx.kernel,
                   ctx.queuesValid ? &ctx.queues : nullptr);
    input.kernelText = &kernel_text;
    runChecks(input, subject, sink);
}

void
listChecks()
{
    for (const Check *c : CheckRegistry::instance().checks()) {
        std::printf("%-26s %-16s %s\n", c->id(),
                    artifactKindName(c->artifact()),
                    c->description());
    }
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace dms;
    bool json = false;
    bool compile = false;
    std::string machine_file;
    std::string sched = "dms";
    std::vector<std::string> targets;

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("%s needs a value", a.c_str());
            return argv[++i];
        };
        if (a == "--json")
            json = true;
        else if (a == "--compile")
            compile = true;
        else if (a == "--machine")
            machine_file = next();
        else if (a == "--sched")
            sched = next();
        else if (a == "--list") {
            listChecks();
            return 0;
        } else if (!a.empty() && a[0] == '-')
            fatal("unknown option '%s'", a.c_str());
        else
            targets.push_back(a);
    }
    if (targets.empty())
        fatal("usage: dmslint [--json] [--compile] [--machine FILE] "
              "[--sched NAME] <file | kernel:NAME | kernel:*>...");

    const MachineModel machine =
        machine_file.empty()
            ? MachineModel::clusteredRing(4)
            : machineFromTextOrDie(readFile(machine_file));

    DiagnosticSink sink;
    for (const std::string &target : targets) {
        if (target == "kernel:*") {
            for (const Loop &loop : namedKernels()) {
                const std::string subject = "kernel:" + loop.name;
                lintLoop(loop, subject, sink);
                if (compile)
                    auditCompiled(loop, machine, sched, subject,
                                  sink);
            }
            continue;
        }
        if (target.rfind("kernel:", 0) == 0) {
            Loop loop;
            std::string error;
            if (!loadLoopSpec(target, loop, error))
                fatal("%s", error.c_str());
            lintLoop(loop, target, sink);
            if (compile)
                auditCompiled(loop, machine, sched, target, sink);
            continue;
        }
        const std::string text = readFile(target);
        switch (detectKind(text)) {
        case TargetKind::Machine:
            lintMachineText(text, target, sink);
            break;
        case TargetKind::Template:
            lintMachineTemplate(text, target, sink);
            break;
        case TargetKind::LoopText: {
            lintLoopText(text, target, sink, &machine);
            if (compile) {
                Loop loop;
                std::string error;
                if (loopFromText(text, loop, error,
                                 machine.latency()))
                    auditCompiled(loop, machine, sched, target,
                                  sink);
            }
            break;
        }
        case TargetKind::ServeStats:
            lintServeStatsText(text, target, sink);
            break;
        case TargetKind::Metrics:
            lintMetricsText(text, target, sink);
            break;
        case TargetKind::Trace:
            lintTraceText(text, target, sink);
            break;
        }
    }

    std::fputs(json ? sink.renderJson().c_str()
                    : sink.renderText().c_str(),
               stdout);
    return sink.exitCode();
}
