/**
 * @file
 * DSP scenario: an 8-tap FIR filter — the paper's motivating
 * domain — compiled for clustered machines of growing width. Shows
 * how DMS trades moves for II as the ring grows, and prints the
 * full pipelined code for the 4-cluster configuration.
 */

#include <cstdio>

#include "codegen/emit.h"
#include "codegen/perf.h"
#include "core/dms.h"
#include "ir/prepass.h"
#include "sched/ims.h"
#include "sched/verifier.h"
#include "support/table.h"
#include "workload/kernels.h"
#include "workload/unroll_policy.h"

int
main()
{
    using namespace dms;
    Loop fir = kernelFir8();
    std::printf("loop: %s, %d ops, trip count %ld\n",
                fir.name.c_str(), fir.ddg.liveOpCount(),
                fir.tripCount);

    Table t("fir8 across machine widths");
    t.header({"machine", "unroll", "II", "MII", "SC", "moves",
              "copies", "cycles", "useful IPC"});

    for (int clusters : {1, 2, 4, 8}) {
        MachineModel m = MachineModel::clusteredRing(clusters);
        Ddg body = applyUnrollPolicy(fir.ddg, m);
        PrepassStats pp =
            singleUsePrepass(body, m.latencyOf(Opcode::Copy));
        DmsOutcome out = scheduleDms(body, m);
        if (!out.sched.ok) {
            std::printf("%s: scheduling failed\n",
                        m.describe().c_str());
            return 1;
        }
        checkSchedule(*out.ddg, m, *out.sched.schedule);
        long iters = fir.tripCount / body.unrollFactor();
        LoopPerf perf =
            evaluatePerf(*out.ddg, *out.sched.schedule, iters);
        t.row({m.describe(), Table::num(body.unrollFactor()),
               Table::num(out.sched.ii), Table::num(out.sched.mii),
               Table::num(perf.stageCount),
               Table::num(out.sched.movesInserted),
               Table::num(pp.copiesInserted),
               Table::num(static_cast<int>(perf.cycles)),
               Table::num(perf.ipc)});
    }
    t.print();

    // Show the generated code for the 4-cluster machine.
    MachineModel m4 = MachineModel::clusteredRing(4);
    Ddg body = fir.ddg;
    singleUsePrepass(body, m4.latencyOf(Opcode::Copy));
    DmsOutcome out = scheduleDms(body, m4);
    PipelinedLoop loop =
        buildPipelinedLoop(*out.ddg, *out.sched.schedule);
    std::printf("\n%s",
                emitPipelinedCode(*out.ddg, m4, loop).c_str());
    return 0;
}
