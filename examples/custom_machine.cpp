/**
 * @file
 * Customizing the machine model through the declarative text format
 * (machine/desc.h): extra copy units per cluster (the "additional
 * hardware support" of the paper's conclusions) and a custom
 * latency table, then scheduling the same loop with two registry
 * schedulers ("dms" and the "twophase" baseline) through the staged
 * pipeline — including the queue register allocation and codegen
 * stages the figure benches leave off.
 */

#include <cstdio>

#include "codegen/emit.h"
#include "core/pipeline.h"
#include "machine/desc.h"
#include "support/diag.h"
#include "support/table.h"
#include "workload/kernels.h"

int
main()
{
    using namespace dms;

    // A 6-cluster ring with 2 copy units per cluster and a slower
    // multiplier (4 cycles instead of 2) — pure data, no factory
    // calls. The same text could live in a file next to a sweep
    // config.
    const char *desc =
        "# six clusters, extra copy bandwidth, slow multiplier\n"
        "machine ring6x2copy\n"
        "clusters 6\n"
        "topology ring\n"
        "regfile queues\n"
        "fus ldst=1 add=1 mul=1 copy=2\n"
        "latency mul=4\n";
    MachineModel machine = machineFromTextOrDie(desc);
    std::printf("machine '%s': %s, mul latency %d\n",
                machine.name().c_str(), machine.describe().c_str(),
                machine.latencyOf(Opcode::Mul));
    std::printf("canonical description:\n%s\n",
                machineToText(machine).c_str());

    // NOTE: the latency change flows into the DDG when edges are
    // built, so build the kernel with the machine's latency table.
    LoopBuilder b(machine.latency());
    OpId x0 = b.load(0, 0);
    OpId x1 = b.load(0, 1);
    OpId x2 = b.load(0, 2);
    OpId p0 = b.mul(x0, x1);
    OpId p1 = b.mul(x0, x2);
    OpId acc0 = b.add1(p0);
    b.flow(acc0, acc0, 1, 1);
    OpId acc1 = b.add1(p1);
    b.flow(acc1, acc1, 1, 1);
    b.store(1, acc0);
    b.store(2, acc1);

    Loop loop;
    loop.name = "autocorr2";
    loop.ddg = b.take();
    loop.tripCount = 500;
    std::printf("loop: %s (%d ops)\n\n", loop.name.c_str(),
                loop.ddg.liveOpCount());

    // One pipeline per scheduler; both run every stage including
    // queue register allocation and kernel construction.
    Table t("DMS vs two-phase on the custom machine");
    t.header({"scheduler", "II", "MII", "moves+copies", "cycles"});

    CompilationContext dms_ctx;
    for (const char *sched : {"dms", "twophase"}) {
        PipelineOptions po;
        po.scheduler = sched;
        po.regalloc = true;
        po.codegen = true;
        Pipeline pipeline(po);

        std::string stages;
        for (const std::string &s : pipeline.stageNames())
            stages += stages.empty() ? s : " -> " + s;

        CompilationContext local;
        CompilationContext &ctx =
            std::string(sched) == "dms" ? dms_ctx : local;
        if (!pipeline.run(loop, machine, ctx))
            fatal("scheduling failed for '%s'", sched);

        // Copies (pre-pass) plus moves (chains / pre-inserted).
        int bookkeeping = 0;
        const Ddg &sd = ctx.scheduledDdg();
        for (OpId id = 0; id < sd.numOps(); ++id) {
            if (sd.opLive(id) &&
                sd.op(id).origin != OpOrigin::Original) {
                ++bookkeeping;
            }
        }
        t.row({sched, Table::num(ctx.result.sched.ii),
               Table::num(ctx.mii), Table::num(bookkeeping),
               Table::num(static_cast<double>(ctx.perf.cycles), 0)});
        if (std::string(sched) == "dms")
            std::printf("pipeline stages: %s\n", stages.c_str());
    }
    t.print();

    std::printf("\nqueue register allocation (DMS schedule):\n%s",
                dms_ctx.queues.summary().c_str());
    std::printf("\nkernel (DMS schedule, %d rows):\n%s",
                dms_ctx.kernel.ii,
                emitKernel(dms_ctx.scheduledDdg(), machine,
                           dms_ctx.kernel)
                    .c_str());
    return 0;
}
