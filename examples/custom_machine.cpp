/**
 * @file
 * Customizing the machine model: extra copy units per cluster (the
 * "additional hardware support" of the paper's conclusions) and a
 * custom latency table. Also demonstrates the queue register
 * allocation report and the two-phase baseline for comparison.
 */

#include <cstdio>

#include "baseline/twophase.h"
#include "core/dms.h"
#include "ir/prepass.h"
#include "regalloc/queue_alloc.h"
#include "sched/verifier.h"
#include "support/diag.h"
#include "support/table.h"
#include "workload/kernels.h"

int
main()
{
    using namespace dms;
    Loop loop = kernelAutocorrelation();
    std::printf("loop: %s (%d ops)\n\n", loop.name.c_str(),
                loop.ddg.liveOpCount());

    // A 6-cluster ring with 2 copy units per cluster and a slower
    // multiplier (4 cycles instead of 2).
    MachineModel machine = MachineModel::clusteredRing(6, 2);
    machine.latency().set(Opcode::Mul, 4);
    std::printf("machine: %s, mul latency %d\n",
                machine.describe().c_str(),
                machine.latencyOf(Opcode::Mul));

    // NOTE: the latency change flows into the DDG when edges are
    // built, so rebuild the kernel with the custom table.
    LoopBuilder b(machine.latency());
    OpId x0 = b.load(0, 0);
    OpId x1 = b.load(0, 1);
    OpId x2 = b.load(0, 2);
    OpId p0 = b.mul(x0, x1);
    OpId p1 = b.mul(x0, x2);
    OpId acc0 = b.add1(p0);
    b.flow(acc0, acc0, 1, 1);
    OpId acc1 = b.add1(p1);
    b.flow(acc1, acc1, 1, 1);
    b.store(1, acc0);
    b.store(2, acc1);
    Ddg body = b.take();

    singleUsePrepass(body, machine.latencyOf(Opcode::Copy));

    DmsOutcome dms = scheduleDms(body, machine);
    TwoPhaseOutcome two = scheduleTwoPhase(body, machine);
    if (!dms.sched.ok || !two.sched.ok)
        fatal("scheduling failed");
    checkSchedule(*dms.ddg, machine, *dms.sched.schedule);
    checkSchedule(*two.ddg, machine, *two.sched.schedule);

    Table t("DMS vs two-phase on the custom machine");
    t.header({"scheduler", "II", "MII", "moves"});
    t.row({"DMS (single phase)", Table::num(dms.sched.ii),
           Table::num(dms.sched.mii),
           Table::num(dms.sched.movesInserted)});
    int two_moves = 0;
    for (OpId id = 0; id < two.ddg->numOps(); ++id) {
        if (two.ddg->opLive(id) &&
            two.ddg->op(id).origin == OpOrigin::MoveOp) {
            ++two_moves;
        }
    }
    t.row({"partition + IMS", Table::num(two.sched.ii),
           Table::num(two.sched.mii), Table::num(two_moves)});
    t.print();

    std::printf("\nqueue register allocation (DMS schedule):\n%s",
                allocateQueues(*dms.ddg, machine,
                               *dms.sched.schedule)
                    .summary()
                    .c_str());
    return 0;
}
