/**
 * @file
 * dmsd — the DMS compile server. Wraps the long-lived
 * CompileService (serve/service.h) behind a tiny driver that
 * serves compilation requests in the textual formats the rest of
 * the repo speaks: loops in workload/text form, machines in
 * machine/desc form.
 *
 * Usage:
 *   dmsd [options] --script FILE     serve requests from a script
 *   dmsd [options] --load N          built-in load generator
 *   dmsd [options] --listen PORT     TCP daemon (serve/net.h wire
 *                                    protocol; 0 = ephemeral port;
 *                                    SIGTERM/SIGINT shut down
 *                                    cleanly: queue drained, stats
 *                                    printed, exit 0)
 *   dmsd [options] --connect HOST:PORT --load N
 *                                    network client: the same zipf
 *                                    load generator, over sockets
 *
 * Options:
 *   --workers N    service worker threads (default: DMS_SERVE_WORKERS
 *                  env, else hardware concurrency)
 *   --clients N    concurrent client threads (default 4)
 *   --machine FILE default machine description (default: the
 *                  paper's 4-cluster queue-file ring)
 *   --sched NAME   scheduler (default: auto — dms on clustered
 *                  machines, ims otherwise)
 *   --hot P        load-gen: percent of requests drawn from the
 *                  zipf-skewed hot kernel set (default 75)
 *   --seed S       load-gen request-mix seed (default 42)
 *   --retries N        load-gen: attempts per request (default 1 =
 *                      no retry; Rejected/Failed are retried with
 *                      exponential backoff + deterministic jitter)
 *   --backoff-ms N     load-gen: base retry backoff (default 2)
 *   --deadline-ms N    load-gen: per-request deadline (default 0 =
 *                      none; expiry is a structured Expired result)
 *   --submit-wait-ms N load-gen: shed wait — submit through the
 *                      non-blocking trySubmit path, rejecting when
 *                      the queue stays full this long (default:
 *                      blocking submit)
 *   --stats-out FILE   load-gen: write the final ServeStats
 *                      snapshot in the `servestats v1` text form
 *                      (lintable with dmslint)
 *   --metrics-out FILE write the final metrics snapshot in the
 *                      `dmsmetrics v1` text form (lintable with
 *                      dmslint); over the wire in --connect mode
 *   --trace-out FILE   write the collected request traces as
 *                      Chrome trace_event JSON (non-empty only
 *                      under DMS_TRACE=1; lintable with dmslint);
 *                      over the wire in --connect mode
 *
 * DMS_METRICS=1 additionally prints the metrics snapshot text to
 * stdout at the end of every mode.
 *
 * With DMS_FAULTS armed (see support/faultinject.h) dmsd prints
 * the per-site injection counters and treats fault-driven
 * failures as expected chaos: the exit code then only reflects
 * invalid requests and process health, so CI can grep "injected"
 * and assert the daemon survived.
 *
 * Script format, one directive per line ('#' comments):
 *   machine FILE   switch the current machine description
 *   sched NAME     switch the scheduler ("auto" resets)
 *   compile SPEC   one request; SPEC is a loop file or kernel:NAME
 *   repeat N SPEC  N identical requests (exercises the cache and
 *                  single-flight dedup)
 *
 * The service's queue depth, shard count and cache capacity come
 * from the DMS_SERVE_QUEUE_DEPTH / DMS_SERVE_SHARDS /
 * DMS_SERVE_CACHE_CAP environment knobs (strictly parsed).
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "machine/desc.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/loadgen.h"
#include "serve/net.h"
#include "serve/service.h"
#include "support/diag.h"
#include "support/faultinject.h"
#include "support/strings.h"
#include "workload/text.h"

namespace {

using namespace dms;

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open '%s'", path.c_str());
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

void
writeTextFile(const std::string &path, const std::string &text)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        fatal("cannot write '%s'", path.c_str());
    std::fputs(text.c_str(), f);
    std::fclose(f);
}

/**
 * The observability artifacts every mode can emit: the metrics
 * snapshot (dmsmetrics v1 text) to --metrics-out and/or stdout
 * (DMS_METRICS=1), and the collected traces (Chrome trace_event
 * JSON; spans only accumulate under DMS_TRACE=1) to --trace-out.
 */
void
emitObsArtifacts(const obs::MetricsSnapshot &metrics,
                 const std::string &metrics_out,
                 const std::string &trace_out)
{
    const std::string text = obs::metricsToText(metrics);
    if (envInt("DMS_METRICS", 0, 0) > 0)
        std::fputs(text.c_str(), stdout);
    if (!metrics_out.empty())
        writeTextFile(metrics_out, text);
    if (!trace_out.empty())
        writeTextFile(trace_out,
                      obs::tracesToJson(
                          obs::TraceLog::instance().traces()));
}

const char *
sourceName(CompileService::Source s)
{
    switch (s) {
    case CompileService::Source::Miss:
        return "cold";
    case CompileService::Source::Coalesced:
        return "coalesced";
    case CompileService::Source::Hit:
        return "hit";
    case CompileService::Source::Invalid:
        return "invalid";
    case CompileService::Source::Rejected:
        return "rejected";
    case CompileService::Source::Quarantined:
        return "quarantined";
    case CompileService::Source::Failed:
        return "failed";
    case CompileService::Source::Expired:
        return "expired";
    }
    return "?";
}

void
printStatsSnapshot(const ServeStats &s)
{
    std::printf("serve: %llu requests, %llu hits, %llu coalesced, "
                "%llu cold, %llu invalid (hit rate %.1f%%)\n",
                static_cast<unsigned long long>(s.requests),
                static_cast<unsigned long long>(s.hits),
                static_cast<unsigned long long>(s.coalesced),
                static_cast<unsigned long long>(s.misses),
                static_cast<unsigned long long>(s.invalid),
                s.hitRate() * 100.0);
    std::printf("cache: %llu entries resident, %llu evicted, "
                "%llu retired; queue peak depth %d/%d\n",
                static_cast<unsigned long long>(s.cached),
                static_cast<unsigned long long>(s.evictions),
                static_cast<unsigned long long>(s.retired),
                s.peakQueueDepth, s.queueCapacity);
    if (s.failed + s.expired + s.rejected > 0 || s.degraded) {
        std::printf(
            "faults: %llu failed, %llu expired, %llu shed, "
            "%llu quarantined%s\n",
            static_cast<unsigned long long>(s.failed),
            static_cast<unsigned long long>(s.expired),
            static_cast<unsigned long long>(s.shed),
            static_cast<unsigned long long>(s.quarantined),
            s.degraded ? " [degraded]" : "");
    }
    if (s.netConnections > 0) {
        std::printf(
            "net: %llu connections, %llu requests, %llu framing "
            "rejects, %llu bytes in, %llu bytes out\n",
            static_cast<unsigned long long>(s.netConnections),
            static_cast<unsigned long long>(s.netRequests),
            static_cast<unsigned long long>(s.netFramingRejects),
            static_cast<unsigned long long>(s.netBytesIn),
            static_cast<unsigned long long>(s.netBytesOut));
    }
    if (faultsArmed()) {
        std::printf("injected: %llu faults across %zu sites\n",
                    static_cast<unsigned long long>(
                        faultsInjected()),
                    faultStats().size());
        for (const FaultSiteStats &site : faultStats()) {
            if (site.fired > 0)
                std::printf("  %s: %llu/%llu\n",
                            site.site.c_str(),
                            static_cast<unsigned long long>(
                                site.fired),
                            static_cast<unsigned long long>(
                                site.hits));
        }
    }
    if (s.latencySamples > 0) {
        std::printf("latency: p50 %.3f ms, p90 %.3f ms, p99 %.3f "
                    "ms, max %.3f ms, mean %.3f ms (%llu samples)\n",
                    s.p50Ms, s.p90Ms, s.p99Ms, s.maxMs, s.meanMs,
                    static_cast<unsigned long long>(
                        s.latencySamples));
    }
}

void
printStats(const CompileService &service)
{
    printStatsSnapshot(service.stats());
}

/** Shared request skeleton: current machine text and scheduler. */
struct RequestContext
{
    std::string machineText;
    std::string scheduler; ///< "" = auto

    CompileRequest
    request(const std::string &loop_text) const
    {
        CompileRequest req;
        req.loopText = loop_text;
        req.machineText = machineText;
        req.options.scheduler = scheduler;
        req.options.regalloc = true;
        return req;
    }
};

int
runScript(CompileService &service, const std::string &path,
          RequestContext rc)
{
    struct Pending
    {
        std::string label;
        CompileService::Ticket ticket;
    };
    std::vector<Pending> pending;

    int line_no = 0;
    int failures = 0;
    for (const std::string &raw : split(readFile(path), '\n')) {
        ++line_no;
        std::string line = trim(raw);
        if (line.empty() || line[0] == '#')
            continue;
        std::vector<std::string> f;
        for (const std::string &t : split(line, ' ')) {
            if (!t.empty())
                f.push_back(t);
        }
        // Dispatch on the directive name first so a wrong arity
        // gets a precise message instead of the generic "unknown
        // directive" the old arity-gated chain fell through to.
        auto wantArgs = [&](size_t n, const char *usage) {
            if (f.size() != n + 1)
                fatal("%s line %d: '%s' takes %zu argument%s "
                      "(usage: %s)",
                      path.c_str(), line_no, f[0].c_str(), n,
                      n == 1 ? "" : "s", usage);
        };
        if (f[0] == "machine") {
            wantArgs(1, "machine FILE");
            // Validate at directive time: a malformed description
            // used to be accepted here and only surface later as
            // per-request rejections (or not at all when no
            // compile followed).
            const std::string text = readFile(f[1]);
            MachineModel parsed = MachineModel::unclustered(1);
            std::string error;
            if (!machineFromText(text, parsed, error))
                fatal("%s line %d: bad machine '%s': %s",
                      path.c_str(), line_no, f[1].c_str(),
                      error.c_str());
            rc.machineText = text;
        } else if (f[0] == "sched") {
            wantArgs(1, "sched NAME|auto");
            rc.scheduler = f[1] == "auto" ? "" : f[1];
        } else if (f[0] == "compile") {
            wantArgs(1, "compile <loop file | kernel:NAME>");
            Loop loop;
            std::string error;
            if (!loadLoopSpec(f[1], loop, error))
                fatal("%s line %d: %s", path.c_str(), line_no,
                      error.c_str());
            Pending p;
            p.label = f[1];
            p.ticket = service.submit(rc.request(loopToText(loop)));
            pending.push_back(std::move(p));
        } else if (f[0] == "repeat") {
            wantArgs(2, "repeat N <loop file | kernel:NAME>");
            int n = 0;
            if (!parseInt(f[1], n) || n <= 0)
                fatal("%s line %d: bad repeat count '%s'",
                      path.c_str(), line_no, f[1].c_str());
            Loop loop;
            std::string error;
            if (!loadLoopSpec(f[2], loop, error))
                fatal("%s line %d: %s", path.c_str(), line_no,
                      error.c_str());
            std::string loop_text = loopToText(loop);
            for (int i = 0; i < n; ++i) {
                Pending p;
                p.label = strfmt("%s[%d]", f[2].c_str(), i);
                p.ticket = service.submit(rc.request(loop_text));
                pending.push_back(std::move(p));
            }
        } else {
            fatal("%s line %d: unknown directive '%s'",
                  path.c_str(), line_no, line.c_str());
        }
    }

    for (Pending &p : pending) {
        CompileService::ResultPtr result = p.ticket.future.get();
        if (!result->parsed) {
            std::printf("%s: REJECTED (%s)\n", p.label.c_str(),
                        result->error.c_str());
            ++failures;
        } else if (!result->ok) {
            std::printf("%s: FAILED (MII %d, no schedule)\n",
                        p.label.c_str(), result->run.mii);
            ++failures;
        } else {
            std::printf("%s: II=%d (MII=%d), SC=%d, %ld cycles "
                        "[%s]\n",
                        p.label.c_str(), result->run.ii,
                        result->run.mii, result->run.stageCount,
                        result->run.cycles,
                        sourceName(p.ticket.source));
        }
    }
    printStats(service);
    return failures == 0 ? 0 : 1;
}

int
runLoadGenerator(CompileService &service, int total, int clients,
                 int hot_percent, std::uint64_t seed,
                 const RequestContext &rc,
                 const RetryPolicy &policy,
                 const std::string &stats_out)
{
    // Hot set: the named kernels, zipf-weighted so a few kernels
    // dominate — the "hot kernels repeat" half of the mix. Cold
    // requests are fresh synthetic loops that never repeat (the
    // global request number keeps them unique across clients).
    std::vector<std::string> hot = hotKernelTexts();
    ZipfPicker zipf(hot.size());
    HammerResult res = hammerService(
        service, total, clients, rc.machineText, rc.scheduler,
        seed,
        [&](int i, Rng &rng) -> std::string {
            if (rng.range(1, 100) <= hot_percent)
                return hot[zipf.pick(rng)];
            return coldLoopText(seed, i);
        },
        policy);

    std::printf("load: %d requests from %d clients (%d%% hot mix)"
                ", %d failures, %d retries\n",
                res.requests, clients, hot_percent, res.failures,
                res.retries);
    std::printf("status: %d ok, %d unschedulable, %d invalid, "
                "%d failed, %d expired, %d rejected, "
                "%d quarantined\n",
                res.count(CompileStatus::Ok),
                res.count(CompileStatus::Unschedulable),
                res.count(CompileStatus::Invalid),
                res.count(CompileStatus::Failed),
                res.count(CompileStatus::Expired),
                res.count(CompileStatus::Rejected),
                res.count(CompileStatus::Quarantined));
    printStats(service);
    if (!stats_out.empty())
        writeTextFile(stats_out, serveStatsToText(service.stats()));
    // Under an armed fault plan, fault-driven failures are the
    // point of the run: the daemon surviving them *is* the pass.
    // Invalid requests still fail the run — the mix generator
    // only emits well-formed requests, so any Invalid is a bug.
    if (faultsArmed())
        return res.count(CompileStatus::Invalid) == 0 ? 0 : 1;
    return res.failures == 0 ? 0 : 1;
}

/** SIGTERM/SIGINT flag for the --listen loop. */
volatile std::sig_atomic_t g_shutdown = 0;

void
onShutdownSignal(int)
{
    g_shutdown = 1;
}

int
runDaemon(CompileService &service, int port,
          const std::string &stats_out,
          const std::string &metrics_out,
          const std::string &trace_out)
{
    NetServerOptions nopts;
    nopts.port = port;
    NetServer server(service, nopts);
    std::string error;
    if (!server.start(error))
        fatal("listen: %s", error.c_str());
    std::printf("dmsd: listening on 127.0.0.1:%d\n",
                server.port());
    std::fflush(stdout);

    std::signal(SIGTERM, onShutdownSignal);
    std::signal(SIGINT, onShutdownSignal);
    while (g_shutdown == 0) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(50));
    }

    // Clean shutdown: stop accepting, finish in-flight request
    // lines, join every connection; the service destructor then
    // drains the compile queue. Exit 0 is the contract CI greps.
    server.stop();
    ServeStats s = server.stats();
    printStatsSnapshot(s);
    if (!stats_out.empty())
        writeTextFile(stats_out, serveStatsToText(s));
    emitObsArtifacts(server.metrics(), metrics_out, trace_out);
    return 0;
}

int
runNetworkLoadGenerator(const std::string &host, int port,
                        int total, int clients, int hot_percent,
                        std::uint64_t seed,
                        const RequestContext &rc,
                        const RetryPolicy &policy,
                        const std::string &stats_out,
                        const std::string &metrics_out,
                        const std::string &trace_out)
{
    // The client knows about chaos runs through the same env knob
    // as the daemon (no CompileService here to arm it for us).
    armFaultsFromEnv();
    std::vector<std::string> hot = hotKernelTexts();
    ZipfPicker zipf(hot.size());
    HammerResult res = hammerNetwork(
        host, port, total, clients, rc.machineText, rc.scheduler,
        seed,
        [&](int i, Rng &rng) -> std::string {
            if (rng.range(1, 100) <= hot_percent)
                return hot[zipf.pick(rng)];
            return coldLoopText(seed, i);
        },
        policy);

    std::printf("load: %d requests from %d clients (%d%% hot mix)"
                ", %d failures, %d retries\n",
                res.requests, clients, hot_percent, res.failures,
                res.retries);
    std::printf("status: %d ok, %d unschedulable, %d invalid, "
                "%d failed, %d expired, %d rejected, "
                "%d quarantined\n",
                res.count(CompileStatus::Ok),
                res.count(CompileStatus::Unschedulable),
                res.count(CompileStatus::Invalid),
                res.count(CompileStatus::Failed),
                res.count(CompileStatus::Expired),
                res.count(CompileStatus::Rejected),
                res.count(CompileStatus::Quarantined));
    int resolved = 0;
    for (size_t st = 0; st < 7; ++st)
        resolved += res.byStatus[st];
    std::printf("network: %d/%d requests terminal, %.1f rps, "
                "p50 %.3f ms, p99 %.3f ms\n",
                resolved, res.requests, res.rps(), res.p50Ms,
                res.p99Ms);

    // Pull the daemon's stats over the wire: the same snapshot the
    // `stats` verb serves, so the hit-rate lines CI greps (and the
    // --stats-out artifact dmslint audits) come from the server's
    // counters, not the client's.
    NetClient nc;
    std::string error;
    if (!nc.connect(host, port, 5000, error)) {
        warn("stats fetch: %s", error.c_str());
    } else {
        std::string text;
        if (!nc.fetchStats(text, error)) {
            warn("stats fetch: %s", error.c_str());
        } else {
            ServeStats s;
            std::string perr;
            if (serveStatsFromText(text, s, perr))
                printStatsSnapshot(s);
            else
                warn("stats fetch: %s", perr.c_str());
            if (!stats_out.empty())
                writeTextFile(stats_out, text);
        }
        // Metrics and traces come over the same wire verbs the
        // server serves to everyone; the trace body is empty
        // unless the *daemon* runs under DMS_TRACE=1.
        if (!metrics_out.empty() ||
            envInt("DMS_METRICS", 0, 0) > 0) {
            std::string mtext;
            if (!nc.fetchMetrics(mtext, error)) {
                warn("metrics fetch: %s", error.c_str());
            } else {
                if (envInt("DMS_METRICS", 0, 0) > 0)
                    std::fputs(mtext.c_str(), stdout);
                if (!metrics_out.empty())
                    writeTextFile(metrics_out, mtext);
            }
        }
        if (!trace_out.empty()) {
            std::string ttext;
            if (!nc.fetchTrace(ttext, error))
                warn("trace fetch: %s", error.c_str());
            else
                writeTextFile(trace_out, ttext);
        }
    }

    // Every dispatched request must have resolved to exactly one
    // terminal status — the invariant the chaos smoke asserts.
    if (resolved != res.requests)
        return 1;
    if (faultsArmed())
        return res.count(CompileStatus::Invalid) == 0 ? 0 : 1;
    return res.failures == 0 ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace dms;
    std::string script;
    std::string machine_file;
    std::string sched_name;
    int load = 0;
    int clients = 4;
    int workers = 0;
    int hot_percent = 75;
    int seed = 42;
    int listen_port = -1;
    std::string connect_to;
    RetryPolicy policy;
    std::string stats_out;
    std::string metrics_out;
    std::string trace_out;

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("%s needs a value", a.c_str());
            return argv[++i];
        };
        auto nextInt = [&]() {
            std::string v = next();
            int out = 0;
            if (!parseInt(v, out))
                fatal("bad value '%s' for %s", v.c_str(),
                      a.c_str());
            return out;
        };
        if (a == "--script")
            script = next();
        else if (a == "--load")
            load = nextInt();
        else if (a == "--clients")
            clients = nextInt();
        else if (a == "--workers")
            workers = nextInt();
        else if (a == "--machine")
            machine_file = next();
        else if (a == "--sched")
            sched_name = next();
        else if (a == "--hot")
            hot_percent = nextInt();
        else if (a == "--seed")
            seed = nextInt();
        else if (a == "--retries")
            policy.maxAttempts = std::max(nextInt(), 1);
        else if (a == "--backoff-ms")
            policy.backoffBaseMs = nextInt();
        else if (a == "--deadline-ms")
            policy.deadlineMs = nextInt();
        else if (a == "--submit-wait-ms")
            policy.submitWaitMs = nextInt();
        else if (a == "--listen")
            listen_port = nextInt();
        else if (a == "--connect")
            connect_to = next();
        else if (a == "--stats-out")
            stats_out = next();
        else if (a == "--metrics-out")
            metrics_out = next();
        else if (a == "--trace-out")
            trace_out = next();
        else
            fatal("unknown option '%s'", a.c_str());
    }
    if (listen_port >= 0) {
        if (!script.empty() || load != 0 || !connect_to.empty())
            fatal("--listen excludes --script/--load/--connect");
        if (listen_port > 65535)
            fatal("--listen port %d out of range", listen_port);
    } else if (!connect_to.empty()) {
        if (!script.empty() || load == 0)
            fatal("usage: dmsd [options] --connect HOST:PORT "
                  "--load N");
    } else if (script.empty() == (load == 0)) {
        fatal("usage: dmsd [options] --script FILE | --load N | "
              "--listen PORT | --connect HOST:PORT --load N");
    }

    // --machine/--sched seed every mode; script directives can
    // override them per request block.
    RequestContext rc;
    rc.machineText =
        !machine_file.empty()
            ? readFile(machine_file)
            : machineToText(MachineModel::clusteredRing(4));
    rc.scheduler = sched_name;

    if (!connect_to.empty()) {
        // Network client: no local service at all — the daemon on
        // the other end owns the workers, queue, and cache.
        const size_t colon = connect_to.rfind(':');
        int port = 0;
        if (colon == std::string::npos ||
            !parseInt(connect_to.substr(colon + 1), port) ||
            port <= 0 || port > 65535)
            fatal("bad --connect target '%s' (want HOST:PORT)",
                  connect_to.c_str());
        return runNetworkLoadGenerator(
            connect_to.substr(0, colon), port, load,
            std::max(clients, 1),
            std::clamp(hot_percent, 0, 100),
            static_cast<std::uint64_t>(seed), rc, policy,
            stats_out, metrics_out, trace_out);
    }

    ServeOptions opts = ServeOptions::fromEnv();
    if (workers > 0)
        opts.workers = workers;
    CompileService service(opts);
    std::printf("dmsd: %d workers, queue depth %d, %d cache "
                "shards, capacity %d, %s eviction\n",
                service.workers(), opts.queueDepth, opts.shards,
                opts.cacheCapacity,
                evictPolicyName(opts.eviction));

    if (listen_port >= 0)
        return runDaemon(service, listen_port, stats_out,
                         metrics_out, trace_out);

    int code;
    if (!script.empty())
        code = runScript(service, script, std::move(rc));
    else
        code = runLoadGenerator(
            service, load, std::max(clients, 1),
            std::clamp(hot_percent, 0, 100),
            static_cast<std::uint64_t>(seed), rc, policy,
            stats_out);
    emitObsArtifacts(service.metrics(), metrics_out, trace_out);
    return code;
}
