/**
 * @file
 * Quickstart: build a small loop, schedule it with DMS on a
 * 4-cluster ring, and inspect everything the library produces —
 * the II, the kernel, the queue allocation, and a simulation
 * validated against sequential execution.
 */

#include <cstdio>

#include "codegen/emit.h"
#include "codegen/perf.h"
#include "core/dms.h"
#include "ir/prepass.h"
#include "regalloc/queue_alloc.h"
#include "sched/verifier.h"
#include "sim/exec.h"
#include "workload/kernels.h"

int
main()
{
    using namespace dms;

    // 1. A loop body: y[i] = a*x[i] + y[i] plus an accumulator.
    LoopBuilder b;
    OpId x = b.load(0);
    OpId y = b.load(1);
    OpId ax = b.mul1(x);
    OpId s = b.add(ax, y);
    b.store(1, s);
    OpId acc = b.add1(s);
    b.flow(acc, acc, 1, 1); // acc += s (loop-carried)
    b.store(2, acc);
    Ddg body = b.take();

    // 2. The paper's clustered machine: 4 clusters in a ring, each
    //    1 L/S + 1 ADD + 1 MUL + 1 copy unit.
    MachineModel machine = MachineModel::clusteredRing(4);
    std::printf("machine: %s\n", machine.describe().c_str());

    // 3. Queue register files read each value once: run the
    //    single-use pre-pass first.
    PrepassStats pp =
        singleUsePrepass(body, machine.latencyOf(Opcode::Copy));
    std::printf("pre-pass inserted %d copy ops\n",
                pp.copiesInserted);

    // 4. Distributed Modulo Scheduling.
    DmsOutcome out = scheduleDms(body, machine);
    if (!out.sched.ok) {
        std::printf("scheduling failed\n");
        return 1;
    }
    std::printf("DMS: II=%d (MII=%d: res=%d rec=%d), %d moves, "
                "%d II values tried\n",
                out.sched.ii, out.sched.mii, out.sched.resMii,
                out.sched.recMii, out.sched.movesInserted,
                out.sched.attempts);

    // 5. The schedule is legal...
    checkSchedule(*out.ddg, machine, *out.sched.schedule);
    std::printf("schedule verified (dependences, resources, "
                "communication)\n\n");

    // 6. ...and here is the pipelined kernel.
    PipelinedLoop loop =
        buildPipelinedLoop(*out.ddg, *out.sched.schedule);
    std::printf("%s\n",
                emitKernel(*out.ddg, machine, loop).c_str());

    // 7. Queue register allocation (LRF/CQRF requirements).
    QueueAllocation qa =
        allocateQueues(*out.ddg, machine, *out.sched.schedule);
    std::printf("%s\n", qa.summary().c_str());

    // 8. Execute 100 iterations cycle by cycle and compare every
    //    stored value with the sequential reference.
    auto problems =
        simulateAndCheck(*out.ddg, machine, *out.sched.schedule, 100);
    if (!problems.empty()) {
        for (const auto &p : problems)
            std::printf("SIM PROBLEM: %s\n", p.c_str());
        return 1;
    }
    LoopPerf perf =
        evaluatePerf(*out.ddg, *out.sched.schedule, 100);
    std::printf("simulated 100 iterations: %ld cycles, useful IPC "
                "%.2f — all stored values match the sequential "
                "reference\n",
                perf.cycles, perf.ipc);
    return 0;
}
