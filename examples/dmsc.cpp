/**
 * @file
 * dmsc — a miniature compiler driver around the DMS library.
 *
 * Usage:
 *   dmsc [options] <loop.ddg | kernel:NAME>
 *
 * Options:
 *   --clusters N    ring size (default 4); 0 = unclustered IMS
 *   --copyfus N     copy units per cluster (default 1)
 *   --unroll N      unroll factor; 0 = automatic policy (default)
 *   --emit          print the full pipelined code
 *   --dot           print the (transformed) DDG in Graphviz DOT
 *   --sim N         simulate N iterations against the reference
 *   --share         report queue sharing
 *
 * Input is either a textual DDG file (see workload/text.h) or one
 * of the built-in kernels, e.g. "kernel:fir8".
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "codegen/emit.h"
#include "codegen/perf.h"
#include "core/dms.h"
#include "ir/dot.h"
#include "ir/prepass.h"
#include "regalloc/sharing.h"
#include "sched/ims.h"
#include "sched/verifier.h"
#include "ir/unroll.h"
#include "sim/exec.h"
#include "support/diag.h"
#include "workload/text.h"
#include "workload/unroll_policy.h"

namespace {

using namespace dms;

Loop
loadInput(const std::string &spec)
{
    if (spec.rfind("kernel:", 0) == 0) {
        std::string name = spec.substr(7);
        for (Loop &k : namedKernels()) {
            if (k.name == name)
                return std::move(k);
        }
        fatal("unknown kernel '%s'", name.c_str());
    }
    std::ifstream in(spec);
    if (!in)
        fatal("cannot open '%s'", spec.c_str());
    std::stringstream ss;
    ss << in.rdbuf();
    return loopFromText(ss.str());
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace dms;
    int clusters = 4;
    int copy_fus = 1;
    int unroll = 0;
    long sim_iters = 0;
    bool emit = false;
    bool dot = false;
    bool share = false;
    std::string input;

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("%s needs a value", a.c_str());
            return argv[++i];
        };
        if (a == "--clusters")
            clusters = std::atoi(next().c_str());
        else if (a == "--copyfus")
            copy_fus = std::atoi(next().c_str());
        else if (a == "--unroll")
            unroll = std::atoi(next().c_str());
        else if (a == "--sim")
            sim_iters = std::atol(next().c_str());
        else if (a == "--emit")
            emit = true;
        else if (a == "--dot")
            dot = true;
        else if (a == "--share")
            share = true;
        else if (!a.empty() && a[0] == '-')
            fatal("unknown option '%s'", a.c_str());
        else
            input = a;
    }
    if (input.empty())
        fatal("usage: dmsc [options] <loop.ddg | kernel:NAME>");

    Loop loop = loadInput(input);
    std::printf("loop '%s': %d ops, trip %ld%s\n",
                loop.name.c_str(), loop.ddg.liveOpCount(),
                loop.tripCount,
                loop.recurrence ? ", has recurrence" : "");

    const bool clustered = clusters > 0;
    MachineModel machine =
        clustered ? MachineModel::clusteredRing(clusters, copy_fus)
                  : MachineModel::unclustered(1);
    std::printf("machine: %s\n", machine.describe().c_str());

    Ddg body = unroll > 1 ? unrollDdg(loop.ddg, unroll)
               : unroll == 0
                   ? applyUnrollPolicy(loop.ddg, machine)
                   : loop.ddg;
    if (body.unrollFactor() > 1)
        std::printf("unrolled x%d (%d ops)\n", body.unrollFactor(),
                    body.liveOpCount());

    const Ddg *sched_ddg = &body;
    std::unique_ptr<PartialSchedule> schedule;
    DmsOutcome dms_out;
    if (clustered) {
        PrepassStats pp = singleUsePrepass(
            body, machine.latencyOf(Opcode::Copy));
        if (pp.copiesInserted > 0)
            std::printf("pre-pass: %d copies\n", pp.copiesInserted);
        dms_out = scheduleDms(body, machine);
        if (!dms_out.sched.ok)
            fatal("DMS failed");
        sched_ddg = dms_out.ddg.get();
        schedule = std::move(dms_out.sched.schedule);
        std::printf("DMS: II=%d (MII=%d), %d moves\n",
                    dms_out.sched.ii, dms_out.sched.mii,
                    dms_out.sched.movesInserted);
    } else {
        SchedOutcome out = scheduleIms(body, machine);
        if (!out.ok)
            fatal("IMS failed");
        schedule = std::move(out.schedule);
        std::printf("IMS: II=%d (MII=%d)\n", out.ii, out.mii);
    }
    checkSchedule(*sched_ddg, machine, *schedule);

    PipelinedLoop pipelined =
        buildPipelinedLoop(*sched_ddg, *schedule);
    long iters =
        std::max<long>(1, loop.tripCount / body.unrollFactor());
    LoopPerf perf = evaluatePerf(*sched_ddg, *schedule, iters);
    std::printf("SC=%d, %ld cycles for %ld iterations, useful IPC "
                "%.2f\n",
                perf.stageCount, perf.cycles, iters, perf.ipc);

    if (emit) {
        std::printf("\n%s", emitPipelinedCode(*sched_ddg, machine,
                                              pipelined)
                                .c_str());
    }
    if (dot)
        std::printf("\n%s", ddgToDot(*sched_ddg).c_str());
    if (share) {
        QueueAllocation qa =
            allocateQueues(*sched_ddg, machine, *schedule);
        SharedAllocation sa = shareQueues(qa, *sched_ddg, *schedule);
        std::printf("\nqueues: %d before sharing, %d after "
                    "(%.0f%% fewer)\n",
                    sa.queuesBefore, sa.queuesAfter,
                    sa.reduction() * 100.0);
    }
    if (sim_iters > 0) {
        auto problems = simulateAndCheck(*sched_ddg, machine,
                                         *schedule, sim_iters);
        if (!problems.empty()) {
            for (const auto &p : problems)
                std::printf("SIM PROBLEM: %s\n", p.c_str());
            return 1;
        }
        std::printf("simulated %ld iterations: stored values match "
                    "the sequential reference\n",
                    sim_iters);
    }
    return 0;
}
