/**
 * @file
 * dmsc — a miniature compiler driver around the DMS library,
 * running the staged pipeline (unroll -> prepass -> mii ->
 * schedule -> regalloc -> codegen -> verify -> perf) end to end.
 *
 * Usage:
 *   dmsc [options] <loop file | kernel:NAME>
 *
 * Options:
 *   --clusters N    ring size (default 4); 0 = unclustered IMS
 *   --copyfus N     copy units per cluster (default 1)
 *   --machine FILE  machine description file (machine/desc.h
 *                   format; overrides --clusters/--copyfus)
 *   --sched NAME    registry scheduler (default: dms on clustered
 *                   machines, ims otherwise)
 *   --unroll N      unroll factor; 0 = automatic policy (default)
 *   --emit          print the full pipelined code
 *   --dot           print the (transformed) DDG in Graphviz DOT
 *   --sim N         simulate N iterations against the reference
 *   --share         report queue sharing
 *
 * Input is either a loop file in the workload/text format (the
 * same format the dmsd compile service accepts, any extension) or
 * one of the built-in kernels, e.g. "kernel:fir8".
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>

#include "codegen/emit.h"
#include "core/pipeline.h"
#include "ir/dot.h"
#include "machine/desc.h"
#include "regalloc/sharing.h"
#include "sim/exec.h"
#include "support/diag.h"
#include "support/strings.h"
#include "workload/text.h"

namespace {

using namespace dms;

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open '%s'", path.c_str());
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace dms;
    int clusters = 4;
    int copy_fus = 1;
    int unroll = 0;
    long sim_iters = 0;
    bool emit = false;
    bool dot = false;
    bool share = false;
    std::string machine_file;
    std::string sched_name;
    std::string input;

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("%s needs a value", a.c_str());
            return argv[++i];
        };
        if (a == "--clusters")
            clusters = std::atoi(next().c_str());
        else if (a == "--copyfus")
            copy_fus = std::atoi(next().c_str());
        else if (a == "--machine")
            machine_file = next();
        else if (a == "--sched")
            sched_name = next();
        else if (a == "--unroll")
            unroll = std::atoi(next().c_str());
        else if (a == "--sim")
            sim_iters = std::atol(next().c_str());
        else if (a == "--emit")
            emit = true;
        else if (a == "--dot")
            dot = true;
        else if (a == "--share")
            share = true;
        else if (!a.empty() && a[0] == '-')
            fatal("unknown option '%s'", a.c_str());
        else
            input = a;
    }
    if (input.empty())
        fatal("usage: dmsc [options] <loop file (workload/text "
              "format) | kernel:NAME>");

    // The CLI and the dmsd service share one loader: a loop file
    // in the workload/text format, or a built-in kernel by name.
    Loop loop;
    std::string load_error;
    if (!loadLoopSpec(input, loop, load_error))
        fatal("%s", load_error.c_str());
    std::printf("loop '%s': %d ops, trip %ld%s\n",
                loop.name.c_str(), loop.ddg.liveOpCount(),
                loop.tripCount,
                loop.recurrence ? ", has recurrence" : "");

    MachineModel machine =
        !machine_file.empty()
            ? machineFromTextOrDie(readFile(machine_file))
            : clusters > 0
                  ? MachineModel::clusteredRing(clusters, copy_fus)
                  : MachineModel::unclustered(1);
    std::printf("machine: %s\n", machine.describe().c_str());

    if (sched_name.empty())
        sched_name = machine.clustered() ? "dms" : "ims";

    PipelineOptions po;
    po.scheduler = sched_name;
    po.forceUnroll = unroll;
    po.regalloc = true;
    po.codegen = true;
    // Single-compile driver: nothing else is running, so default the
    // speculative II ladder on when a second core exists
    // (DMS_SPECULATE_II=0/1 overrides either way).
    po.config.dms.speculateII =
        envInt("DMS_SPECULATE_II",
               std::thread::hardware_concurrency() >= 2 ? 1 : 0,
               0) > 0
            ? 1
            : 0;
    Pipeline pipeline(po);

    std::string stages;
    for (const std::string &s : pipeline.stageNames())
        stages += stages.empty() ? s : " -> " + s;
    std::printf("pipeline: %s (scheduler '%s')\n", stages.c_str(),
                sched_name.c_str());

    CompilationContext ctx;
    if (!pipeline.run(loop, machine, ctx))
        fatal("scheduler '%s' failed (MII %d)", sched_name.c_str(),
              ctx.mii);

    if (ctx.body.unrollFactor() > 1)
        std::printf("unrolled x%d (%d ops)\n",
                    ctx.body.unrollFactor(),
                    ctx.body.liveOpCount());
    if (ctx.prepass.copiesInserted > 0)
        std::printf("pre-pass: %d copies\n",
                    ctx.prepass.copiesInserted);
    std::printf("%s: II=%d (MII=%d), %d moves\n", sched_name.c_str(),
                ctx.result.sched.ii, ctx.result.sched.mii,
                ctx.result.sched.movesInserted);
    std::printf("SC=%d, %ld cycles for %ld iterations, useful IPC "
                "%.2f\n",
                ctx.perf.stageCount, ctx.perf.cycles,
                ctx.perf.iterations, ctx.perf.ipc);
    if (ctx.queuesValid) {
        std::printf("regalloc: %zu queues in %d files (%d storage "
                    "positions, max %d queues/file, max %d "
                    "queues/link)\n",
                    ctx.queues.lifetimes.size(),
                    ctx.queues.filesUsed, ctx.queues.totalStorage,
                    ctx.queues.maxQueuesPerFile,
                    ctx.queues.maxQueuesPerLink);
    }

    const Ddg &sched_ddg = ctx.scheduledDdg();
    const PartialSchedule &schedule = *ctx.result.sched.schedule;
    if (emit) {
        std::printf("\n%s",
                    emitPipelinedCode(sched_ddg, machine, ctx.kernel,
                                      ctx.queuesValid ? &ctx.queues
                                                      : nullptr)
                        .c_str());
    }
    if (dot)
        std::printf("\n%s", ddgToDot(sched_ddg).c_str());
    if (share) {
        if (!ctx.queuesValid)
            fatal("--share needs a queue-file machine");
        SharedAllocation sa =
            shareQueues(ctx.queues, sched_ddg, schedule);
        std::printf("\nqueues: %d before sharing, %d after "
                    "(%.0f%% fewer)\n",
                    sa.queuesBefore, sa.queuesAfter,
                    sa.reduction() * 100.0);
    }
    if (sim_iters > 0) {
        auto problems = simulateAndCheck(sched_ddg, machine,
                                         schedule, sim_iters);
        if (!problems.empty()) {
            for (const auto &p : problems)
                std::printf("SIM PROBLEM: %s\n", p.c_str());
            return 1;
        }
        std::printf("simulated %ld iterations: stored values match "
                    "the sequential reference\n",
                    sim_iters);
    }
    return 0;
}
