/**
 * @file
 * Set-2 scenario (paper section 4): loops without recurrences are
 * "highly vectorizable, having characteristics similar to the ones
 * usually found in DSP applications" and keep profiting from wider
 * rings. This example sweeps one vectorizable and one
 * recurrence-bound kernel from 1 to 10 clusters and prints the
 * speedup curves side by side — figure 5/6 in miniature.
 */

#include <cstdio>

#include "codegen/perf.h"
#include "core/dms.h"
#include "ir/prepass.h"
#include "sched/verifier.h"
#include "support/diag.h"
#include "support/table.h"
#include "workload/kernels.h"
#include "workload/unroll_policy.h"

namespace {

using namespace dms;

struct Point
{
    long cycles = 0;
    double ipc = 0.0;
};

Point
run(const Loop &loop, int clusters)
{
    MachineModel m = MachineModel::clusteredRing(clusters);
    Ddg body = applyUnrollPolicy(loop.ddg, m);
    singleUsePrepass(body, m.latencyOf(Opcode::Copy));
    DmsOutcome out = scheduleDms(body, m);
    if (!out.sched.ok)
        fatal("scheduling %s failed", loop.name.c_str());
    checkSchedule(*out.ddg, m, *out.sched.schedule);
    long iters =
        std::max<long>(1, loop.tripCount / body.unrollFactor());
    LoopPerf perf =
        evaluatePerf(*out.ddg, *out.sched.schedule, iters);
    return {perf.cycles, perf.ipc};
}

} // namespace

int
main()
{
    using namespace dms;
    Loop vec = kernelColorConvert(); // no recurrence, wide ILP
    Loop rec = kernelHorner();       // tight recurrence (RecMII 3)
    std::printf("vectorizable: %s (%d ops), recurrence-bound: %s "
                "(RecMII-limited)\n\n",
                vec.name.c_str(), vec.ddg.liveOpCount(),
                rec.name.c_str());

    Point vec_base = run(vec, 1);
    Point rec_base = run(rec, 1);

    Table t("speedup over the 1-cluster machine");
    t.header({"clusters", "FUs", "vec_speedup", "vec_IPC",
              "rec_speedup", "rec_IPC"});
    for (int c = 1; c <= 10; ++c) {
        Point v = run(vec, c);
        Point r = run(rec, c);
        t.row({Table::num(c), Table::num(3 * c),
               Table::num(static_cast<double>(vec_base.cycles) /
                          v.cycles),
               Table::num(v.ipc),
               Table::num(static_cast<double>(rec_base.cycles) /
                          r.cycles),
               Table::num(r.ipc)});
    }
    t.print();
    std::printf("\nThe vectorizable loop keeps scaling with the "
                "ring; the recurrence-bound loop saturates at its "
                "RecMII — the paper's set-1 vs set-2 contrast.\n");
    return 0;
}
