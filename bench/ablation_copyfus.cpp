/**
 * @file
 * Ablation A2: copy units per cluster. The paper's conclusions:
 * "When the II increases it is mainly because the Copy FUs became
 * the most heavily used resources ... That could be improved with
 * additional hardware support." This bench adds that hardware.
 */

#include <cstdio>

#include "eval/figures.h"

int
main()
{
    using namespace dms;
    int count = suiteCountFromEnv(300);
    std::vector<Loop> suite = standardSuite(kSuiteSeed, count);
    auto set1 = selectSet(suite, LoopSet::Set1);
    std::printf("ablation A2 (copy units): %zu loops\n",
                suite.size());

    Table t("A2: II overhead vs copy units per cluster");
    t.header({"clusters", "copy_fus", "II_increased_frac",
              "avg_II"});
    for (int c : {4, 6, 8, 10}) {
        // Unclustered reference, computed once per cluster count.
        std::vector<LoopRun> ref;
        ref.reserve(set1.size());
        for (size_t i : set1) {
            ref.push_back(runLoopUnclustered(suite[i], c,
                                             SchedParams{}, true));
        }
        for (int fus : {1, 2, 3}) {
            int increased = 0;
            double avg_ii = 0.0;
            for (size_t j = 0; j < set1.size(); ++j) {
                LoopRun d = runLoopClustered(
                    suite[set1[j]], c, DmsParams{}, true, fus);
                if (!d.ok || !ref[j].ok)
                    continue;
                increased += d.ii > ref[j].ii;
                avg_ii += d.ii;
            }
            t.row({Table::num(c), Table::num(fus),
                   Table::pct(static_cast<double>(increased) /
                              set1.size()),
                   Table::num(avg_ii / set1.size())});
        }
    }
    t.print();
    return 0;
}
