/**
 * @file
 * Regenerates paper Figure 5: total execution cycles (relative,
 * 3-FU unclustered = 100) across 3-30 FUs for set 1 (all loops)
 * and set 2 (no recurrences), clustered (DMS) vs unclustered
 * (IMS). Paper shape: small degradation up to ~21 FUs on set 1,
 * near-zero gap on set 2.
 */

#include <cstdio>

#include "eval/figures.h"
#include "eval/report.h"

int
main()
{
    using namespace dms;
    int count = suiteCountFromEnv(1258);
    std::printf("fig5: suite of %d synthetic loops + %zu kernels\n",
                count, namedKernels().size());

    std::vector<Loop> suite = standardSuite(kSuiteSeed, count);
    auto set2 = selectSet(suite, LoopSet::Set2);
    std::printf("set1=%zu loops, set2=%zu loops (no recurrences)\n",
                suite.size(), set2.size());

    RunnerOptions opts;
    opts.maxClusters = 10;
    auto matrix = runMatrixReported("fig5", suite, opts);

    figure5(suite, matrix).print();
    return 0;
}
