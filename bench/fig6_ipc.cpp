/**
 * @file
 * Regenerates paper Figure 6: IPC (useful operations only,
 * prologue/epilogue included via the iteration count) across 3-30
 * FUs for both sets and both machines. Paper shape: set 1 levels
 * off beyond 21 FUs (7 clusters); set 2 keeps improving through
 * 30 FUs.
 */

#include <cstdio>

#include "eval/figures.h"
#include "eval/report.h"

int
main()
{
    using namespace dms;
    int count = suiteCountFromEnv(1258);
    std::printf("fig6: suite of %d synthetic loops + %zu kernels\n",
                count, namedKernels().size());

    std::vector<Loop> suite = standardSuite(kSuiteSeed, count);
    RunnerOptions opts;
    opts.maxClusters = 10;
    auto matrix = runMatrixReported("fig6", suite, opts);

    figure6(suite, matrix).print();
    return 0;
}
