/**
 * @file
 * Ablation A1: DMS with strategy 2 (move chains) disabled — the
 * authors' earlier IPPS'98 single-phase scheme, which the paper
 * calls "inappropriate for larger configurations because it cannot
 * consider communication between indirectly-connected clusters".
 * Expectation: identical on 2-3 clusters (fully connected rings),
 * growing II penalty from 4 clusters up.
 */

#include <cstdio>

#include "eval/figures.h"

int
main()
{
    using namespace dms;
    int count = suiteCountFromEnv(300);
    std::vector<Loop> suite = standardSuite(kSuiteSeed, count);
    auto set1 = selectSet(suite, LoopSet::Set1);
    std::printf("ablation A1 (no chains): %zu loops\n",
                suite.size());

    Table t("A1: full DMS vs chains disabled (IPPS'98-like)");
    t.header({"clusters", "avg_II_dms", "avg_II_nochains",
              "nochains_worse_on", "avg_moves_dms"});
    for (int c : {2, 3, 4, 5, 6, 8, 10}) {
        DmsParams full;
        DmsParams nochain;
        nochain.enableChains = false;

        double ii_full = 0.0;
        double ii_nc = 0.0;
        double moves = 0.0;
        int worse = 0;
        for (size_t i : set1) {
            LoopRun a =
                runLoopClustered(suite[i], c, full, true);
            LoopRun b =
                runLoopClustered(suite[i], c, nochain, true);
            if (!a.ok || !b.ok) {
                std::printf("  scheduling failure on %s @ %d\n",
                            suite[i].name.c_str(), c);
                continue;
            }
            ii_full += a.ii;
            ii_nc += b.ii;
            moves += a.movesInserted;
            worse += b.ii > a.ii;
        }
        double n = static_cast<double>(set1.size());
        t.row({Table::num(c), Table::num(ii_full / n),
               Table::num(ii_nc / n), Table::num(worse),
               Table::num(moves / n)});
    }
    t.print();
    return 0;
}
