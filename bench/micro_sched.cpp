/**
 * @file
 * Ablation A6: scheduler throughput microbenchmarks
 * (google-benchmark). Measures the compile-time cost of IMS, DMS,
 * the pre-pass and the simulator — the engineering overhead a
 * compiler pays for clustering support.
 */

#include <benchmark/benchmark.h>

#include "core/dms.h"
#include "ir/prepass.h"
#include "sim/exec.h"
#include "workload/kernels.h"
#include "workload/synth.h"

namespace {

using namespace dms;

Loop
synthLoop(int seed, int ops)
{
    Rng rng(static_cast<std::uint64_t>(seed));
    SynthParams sp;
    sp.minOps = ops;
    sp.maxOps = ops;
    return synthesizeLoop(rng, sp, seed);
}

void
BM_ImsKernelFir8(benchmark::State &state)
{
    Loop k = kernelFir8();
    MachineModel m = MachineModel::unclustered(
        static_cast<int>(state.range(0)));
    for (auto _ : state) {
        SchedOutcome out = scheduleIms(k.ddg, m);
        benchmark::DoNotOptimize(out.ii);
    }
}
BENCHMARK(BM_ImsKernelFir8)->Arg(1)->Arg(4)->Arg(8);

void
BM_ImsSynthetic(benchmark::State &state)
{
    Loop k = synthLoop(7, static_cast<int>(state.range(0)));
    MachineModel m = MachineModel::unclustered(4);
    for (auto _ : state) {
        SchedOutcome out = scheduleIms(k.ddg, m);
        benchmark::DoNotOptimize(out.ii);
    }
    state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ImsSynthetic)->Arg(8)->Arg(16)->Arg(32)->Complexity();

void
BM_DmsSynthetic(benchmark::State &state)
{
    Loop k = synthLoop(7, 24);
    MachineModel m = MachineModel::clusteredRing(
        static_cast<int>(state.range(0)));
    Ddg body = k.ddg;
    singleUsePrepass(body, m.latencyOf(Opcode::Copy));
    for (auto _ : state) {
        DmsOutcome out = scheduleDms(body, m);
        benchmark::DoNotOptimize(out.sched.ii);
    }
}
BENCHMARK(BM_DmsSynthetic)->Arg(2)->Arg(4)->Arg(8)->Arg(10);

void
BM_DmsVsImsOverhead(benchmark::State &state)
{
    // DMS on C clusters vs IMS at equal width: the single-phase
    // integration cost.
    Loop k = synthLoop(11, 20);
    MachineModel cm = MachineModel::clusteredRing(6);
    Ddg body = k.ddg;
    singleUsePrepass(body, cm.latencyOf(Opcode::Copy));
    for (auto _ : state) {
        DmsOutcome out = scheduleDms(body, cm);
        benchmark::DoNotOptimize(out.sched.ii);
    }
}
BENCHMARK(BM_DmsVsImsOverhead);

void
BM_Prepass(benchmark::State &state)
{
    Loop k = synthLoop(3, static_cast<int>(state.range(0)));
    for (auto _ : state) {
        state.PauseTiming();
        Ddg body = k.ddg;
        state.ResumeTiming();
        PrepassStats st = singleUsePrepass(body, 1);
        benchmark::DoNotOptimize(st.copiesInserted);
    }
}
BENCHMARK(BM_Prepass)->Arg(16)->Arg(40);

void
BM_Simulator(benchmark::State &state)
{
    Loop k = kernelFir8();
    MachineModel m = MachineModel::clusteredRing(4);
    Ddg body = k.ddg;
    singleUsePrepass(body, 1);
    DmsOutcome out = scheduleDms(body, m);
    for (auto _ : state) {
        SimResult r = simulateSchedule(*out.ddg, m,
                                       *out.sched.schedule, 64);
        benchmark::DoNotOptimize(r.cycles);
    }
}
BENCHMARK(BM_Simulator);

} // namespace
