/**
 * @file
 * Ablation A3: the chain-direction selection rule. The paper picks
 * the option "that maximizes the number of free slots left
 * available to schedule move operations in any cluster", ties
 * broken by fewest moves; the ablation compares against a naive
 * shortest-path-only rule.
 */

#include <cstdio>

#include "eval/figures.h"

int
main()
{
    using namespace dms;
    int count = suiteCountFromEnv(300);
    std::vector<Loop> suite = standardSuite(kSuiteSeed, count);
    auto set1 = selectSet(suite, LoopSet::Set1);
    std::printf("ablation A3 (chain rule): %zu loops\n",
                suite.size());

    Table t("A3: max-free-slots (paper) vs shortest-path chains");
    t.header({"clusters", "avg_II_maxfree", "avg_II_shortest",
              "maxfree_wins", "shortest_wins"});
    for (int c : {5, 6, 8, 10}) {
        DmsParams paper_rule;
        paper_rule.chainRule = ChainSelectRule::MaxFreeSlots;
        DmsParams naive;
        naive.chainRule = ChainSelectRule::ShortestPath;

        double ii_a = 0.0;
        double ii_b = 0.0;
        int wins_a = 0;
        int wins_b = 0;
        for (size_t i : set1) {
            LoopRun a =
                runLoopClustered(suite[i], c, paper_rule, true);
            LoopRun b = runLoopClustered(suite[i], c, naive, true);
            if (!a.ok || !b.ok)
                continue;
            ii_a += a.ii;
            ii_b += b.ii;
            wins_a += a.ii < b.ii;
            wins_b += b.ii < a.ii;
        }
        double n = static_cast<double>(set1.size());
        t.row({Table::num(c), Table::num(ii_a / n),
               Table::num(ii_b / n), Table::num(wins_a),
               Table::num(wins_b)});
    }
    t.print();
    return 0;
}
