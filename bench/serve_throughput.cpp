/**
 * @file
 * Compile-service throughput benchmark: hammers a CompileService
 * with a zipf-skewed request mix — a small hot set of kernels that
 * repeats and a churn of cold synthetic loops that never does —
 * and reports cold vs warm requests/sec, hit rate and latency
 * percentiles in BENCH_serve.json.
 *
 * Phases:
 *   cold   every request unique (fresh synth loops): the service
 *          at its worst, one full pipeline run per request;
 *   warm   the hot set replayed after priming: every request a
 *          cache hit;
 *   mixed  the zipf mix from concurrent clients: the serving
 *          steady state, with hit rate and p50/p99 latency.
 *
 * Knobs: DMS_SUITE_COUNT (cold pool size, default 200),
 * DMS_SERVE_CLIENTS (client threads, default 4),
 * DMS_SERVE_MIN_SPEEDUP (gate: warm rps must be at least this
 * multiple of cold rps, default 10; the acceptance floor).
 */

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "eval/runner.h"
#include "machine/desc.h"
#include "serve/loadgen.h"
#include "serve/service.h"
#include "support/diag.h"
#include "support/faultinject.h"
#include "support/strings.h"
#include "workload/suite.h"
#include "workload/text.h"

int
main()
{
    using namespace dms;
    const int cold_pool = suiteCountFromEnv(200);
    const int clients = envInt("DMS_SERVE_CLIENTS", 4);
    const int min_speedup = envInt("DMS_SERVE_MIN_SPEEDUP", 10);
    constexpr std::uint64_t kSeed = 0x5e7e5e7eULL;

    const std::string machine_text =
        machineToText(MachineModel::clusteredRing(4));

    // Cold pool: unique synthetic loops, serialized up front so
    // the timed phases measure the service, not the generator.
    std::vector<std::string> cold_texts;
    cold_texts.reserve(static_cast<size_t>(cold_pool));
    for (int i = 0; i < cold_pool; ++i)
        cold_texts.push_back(coldLoopText(kSeed, i));

    // Hot set: the named kernels under zipf weights (rank^-1.1).
    const std::vector<std::string> hot_texts = hotKernelTexts();
    const ZipfPicker zipf(hot_texts.size());

    std::printf("serve_throughput: %zu cold loops, %zu hot "
                "kernels, %d clients\n",
                cold_texts.size(), hot_texts.size(), clients);

    // --- cold: every request unique, a fresh service ------------
    const int cold_requests = static_cast<int>(cold_texts.size());
    double cold_rps = 0;
    {
        CompileService service;
        HammerResult cold = hammerService(
            service, cold_requests, clients, machine_text, "dms",
            kSeed, [&](int i, Rng &) -> std::string {
                return cold_texts[static_cast<size_t>(i)];
            });
        ServeStats s = service.stats();
        DMS_ASSERT(s.hits == 0, "cold phase hit the cache (%llu)",
                   static_cast<unsigned long long>(s.hits));
        cold_rps = cold.rps();
        std::printf("cold: %d requests in %.3f s = %.0f req/s\n",
                    cold.requests, cold.seconds, cold_rps);
    }

    // --- warm + mixed share a service ---------------------------
    CompileService service;

    // Prime the hot set, then replay: every timed request a hit.
    for (const std::string &t : hot_texts) {
        CompileRequest req;
        req.loopText = t;
        req.machineText = machine_text;
        req.options.scheduler = "dms";
        req.options.regalloc = true;
        service.compile(req);
    }
    const int warm_requests = std::max(2000, cold_requests * 4);
    HammerResult warm = hammerService(
        service, warm_requests, clients, machine_text, "dms",
        kSeed + 1, [&](int, Rng &rng) -> std::string {
            return hot_texts[zipf.pick(rng)];
        });
    double warm_rps = warm.rps();
    std::printf("warm: %d requests in %.3f s = %.0f req/s "
                "(%.1fx cold)\n",
                warm.requests, warm.seconds, warm_rps,
                warm_rps / cold_rps);

    // --- mixed: the zipf steady state with cold churn -----------
    // Phase-local numbers: hit rate from the stats delta across
    // the hammer, latency percentiles measured client-side inside
    // it — the service's own ServeStats span its whole lifetime
    // (prime + warm included) and would overstate both.
    const ServeStats before = service.stats();
    const int mixed_requests = cold_requests * 2;
    HammerResult mixed_run = hammerService(
        service, mixed_requests, clients, machine_text, "dms",
        kSeed + 2, [&](int i, Rng &rng) -> std::string {
            if (rng.range(1, 100) <= 75)
                return hot_texts[zipf.pick(rng)];
            return coldLoopText(kSeed ^ 0xc01dULL, i);
        });
    const ServeStats after = service.stats();
    const std::uint64_t mixed_hits =
        (after.hits - before.hits) +
        (after.coalesced - before.coalesced);
    const std::uint64_t mixed_coalesced =
        after.coalesced - before.coalesced;
    const double mixed_hit_rate =
        static_cast<double>(mixed_hits) /
        static_cast<double>(mixed_requests);
    double mixed_rps = mixed_run.rps();
    std::printf("mixed: %d requests in %.3f s = %.0f req/s, "
                "hit rate %.1f%%, %llu coalesced, p50 %.3f ms, "
                "p99 %.3f ms\n",
                mixed_run.requests, mixed_run.seconds, mixed_rps,
                mixed_hit_rate * 100.0,
                static_cast<unsigned long long>(mixed_coalesced),
                mixed_run.p50Ms, mixed_run.p99Ms);

    // --- degraded: the chaos regime, measured not feared --------
    // A fresh service with a deliberately small queue, faults
    // armed at the serve and pipeline sites, clients running the
    // full retry/shed/deadline loop — the b_eff philosophy:
    // overloaded operation is a measured regime, not an error.
    double degraded_rps = 0;
    double shed_rate = 0;
    std::uint64_t injected = 0;
    HammerResult degraded;
    ServeStats degraded_stats;
    {
        ServeOptions dopts;
        dopts.queueDepth = 8;
        CompileService dservice(dopts);
        FaultPlan plan;
        std::string perr;
        bool plan_ok = plan.parse(
            "serve.worker.compile:0.15:1337,pipeline.*:0.05:42",
            perr);
        DMS_ASSERT(plan_ok, "bad bench fault plan: %s",
                   perr.c_str());
        RetryPolicy rp;
        rp.maxAttempts = 3;
        rp.backoffBaseMs = 1;
        rp.backoffMaxMs = 8;
        rp.submitWaitMs = 1;
        armFaults(std::move(plan));
        degraded = hammerService(
            dservice, mixed_requests, clients, machine_text,
            "dms", kSeed + 3,
            [&](int i, Rng &rng) -> std::string {
                if (rng.range(1, 100) <= 75)
                    return hot_texts[zipf.pick(rng)];
                return coldLoopText(kSeed ^ 0xfa017ULL, i);
            },
            rp);
        injected = faultsInjected();
        disarmFaults();
        degraded_stats = dservice.stats();
        degraded_rps = degraded.rps();
        shed_rate = degraded_stats.requests > 0
                        ? static_cast<double>(degraded_stats.shed) /
                              static_cast<double>(
                                  degraded_stats.requests)
                        : 0.0;
        std::printf(
            "degraded: %d requests in %.3f s = %.0f req/s, "
            "%llu injected, shed rate %.1f%%, %d retries, "
            "p99 %.3f ms\n",
            degraded.requests, degraded.seconds, degraded_rps,
            static_cast<unsigned long long>(injected),
            shed_rate * 100.0, degraded.retries, degraded.p99Ms);
    }

    std::string json = "{";
    json += "\"bench\":\"serve_throughput\",";
    json += strfmt("\"clients\":%d,", clients);
    json += strfmt("\"workers\":%d,", service.workers());
    json += strfmt("\"hot_kernels\":%zu,", hot_texts.size());
    json += strfmt("\"cold\":{\"requests\":%d,\"rps\":%.1f},",
                   cold_requests, cold_rps);
    json += strfmt("\"warm\":{\"requests\":%d,\"rps\":%.1f},",
                   warm.requests, warm_rps);
    json += strfmt(
        "\"mixed\":{\"requests\":%d,\"rps\":%.1f,"
        "\"hit_rate\":%.4f,\"coalesced\":%llu,"
        "\"p50_ms\":%.4f,\"p90_ms\":%.4f,\"p99_ms\":%.4f},",
        mixed_run.requests, mixed_rps, mixed_hit_rate,
        static_cast<unsigned long long>(mixed_coalesced),
        mixed_run.p50Ms, mixed_run.p90Ms, mixed_run.p99Ms);
    json += strfmt(
        "\"degraded\":{\"requests\":%d,\"rps\":%.1f,"
        "\"p50_ms\":%.4f,\"p99_ms\":%.4f,\"shed_rate\":%.4f,"
        "\"injected\":%llu,\"failed\":%llu,\"expired\":%llu,"
        "\"quarantined\":%llu,\"retries\":%d},",
        degraded.requests, degraded_rps, degraded.p50Ms,
        degraded.p99Ms, shed_rate,
        static_cast<unsigned long long>(injected),
        static_cast<unsigned long long>(degraded_stats.failed),
        static_cast<unsigned long long>(degraded_stats.expired),
        static_cast<unsigned long long>(
            degraded_stats.quarantined),
        degraded.retries);
    json += strfmt("\"warm_vs_cold\":%.1f}",
                   warm_rps / cold_rps);

    const char *path = "BENCH_serve.json";
    std::FILE *f = std::fopen(path, "w");
    if (f == nullptr) {
        warn("cannot write %s", path);
        return 1;
    }
    std::fputs(json.c_str(), f);
    std::fputc('\n', f);
    std::fclose(f);
    inform("wrote %s", path);

    if (warm_rps < cold_rps * min_speedup) {
        std::fprintf(stderr,
                     "FAIL: warm %.0f req/s is below %dx cold "
                     "%.0f req/s\n",
                     warm_rps, min_speedup, cold_rps);
        return 1;
    }
    std::printf("gate: warm/cold = %.1fx (>= %dx) ok\n",
                warm_rps / cold_rps, min_speedup);
    return 0;
}
