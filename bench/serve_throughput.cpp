/**
 * @file
 * Compile-service throughput benchmark: hammers a CompileService
 * with a zipf-skewed request mix — a small hot set of kernels that
 * repeats and a churn of cold synthetic loops that never does —
 * and reports cold vs warm requests/sec, hit rate and latency
 * percentiles in BENCH_serve.json.
 *
 * Phases:
 *   cold   every request unique (fresh synth loops): the service
 *          at its worst, one full pipeline run per request;
 *   warm   the hot set replayed after priming: every request a
 *          cache hit;
 *   mixed  the zipf mix from concurrent clients: the serving
 *          steady state, with hit rate and p50/p99 latency.
 *
 *   network the same mix through the TCP front-end (serve/net.h):
 *          a loopback NetServer on an ephemeral port, hammered by
 *          socket clients at several client counts — rps, hit
 *          rate, p50/p99 and mean request-line size per point,
 *          the b_eff-style sweep of the wire.
 *
 * Knobs: DMS_SUITE_COUNT (cold pool size, default 200),
 * DMS_SERVE_CLIENTS (client threads, default 4),
 * DMS_SERVE_MIN_SPEEDUP (gate: warm rps must be at least this
 * multiple of cold rps, default 10; the acceptance floor).
 *
 * Regression gate: when DMS_SERVE_BASELINE names a previous
 * BENCH_serve.json, the run fails (exit 1) if warm rps drops more
 * than DMS_SERVE_MAX_DROP percent (default 15) below it — the CI
 * perf-gate job runs merge-base and head back to back and points
 * this at the base run's file, mirroring DMS_HOTPATH_BASELINE.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "eval/runner.h"
#include "machine/desc.h"
#include "serve/loadgen.h"
#include "serve/net.h"
#include "serve/service.h"
#include "support/diag.h"
#include "support/stats.h"
#include "support/faultinject.h"
#include "support/strings.h"
#include "workload/suite.h"
#include "workload/text.h"

namespace {

using namespace dms;

/** One network sweep point. */
struct NetPoint
{
    int clients = 0;
    int requests = 0;
    double rps = 0;
    double hitRate = 0;
    double p50Ms = 0;
    double p99Ms = 0;
    double msgBytes = 0; ///< mean request-line size on the wire
};

/**
 * Extract warm.rps from a baseline BENCH_serve.json (string scan;
 * the file is our own single-line emission). Negative when absent.
 */
double
baselineWarmRps(const std::string &json)
{
    const size_t at = json.find("\"warm\":{");
    if (at == std::string::npos)
        return -1.0;
    const char *field = "\"rps\":";
    const size_t val = json.find(field, at);
    if (val == std::string::npos)
        return -1.0;
    return std::strtod(json.c_str() + val + std::strlen(field),
                       nullptr);
}

int
maxDropPercentFromEnv()
{
    const char *s = std::getenv("DMS_SERVE_MAX_DROP");
    if (s == nullptr)
        return 15;
    int v = 0;
    if (!parseInt(s, v) || v >= 100) {
        warn("DMS_SERVE_MAX_DROP='%s' is not a percentage below "
             "100; using 15",
             s);
        return 15;
    }
    return v;
}

} // namespace

int
main()
{
    using namespace dms;
    const int cold_pool = suiteCountFromEnv(200);
    const int clients = envInt("DMS_SERVE_CLIENTS", 4);
    const int min_speedup = envInt("DMS_SERVE_MIN_SPEEDUP", 10);
    constexpr std::uint64_t kSeed = 0x5e7e5e7eULL;

    const std::string machine_text =
        machineToText(MachineModel::clusteredRing(4));

    // Cold pool: unique synthetic loops, serialized up front so
    // the timed phases measure the service, not the generator.
    std::vector<std::string> cold_texts;
    cold_texts.reserve(static_cast<size_t>(cold_pool));
    for (int i = 0; i < cold_pool; ++i)
        cold_texts.push_back(coldLoopText(kSeed, i));

    // Hot set: the named kernels under zipf weights (rank^-1.1).
    const std::vector<std::string> hot_texts = hotKernelTexts();
    const ZipfPicker zipf(hot_texts.size());

    std::printf("serve_throughput: %zu cold loops, %zu hot "
                "kernels, %d clients\n",
                cold_texts.size(), hot_texts.size(), clients);

    // --- cold: every request unique, a fresh service ------------
    const int cold_requests = static_cast<int>(cold_texts.size());
    double cold_rps = 0;
    {
        CompileService service;
        HammerResult cold = hammerService(
            service, cold_requests, clients, machine_text, "dms",
            kSeed, [&](int i, Rng &) -> std::string {
                return cold_texts[static_cast<size_t>(i)];
            });
        ServeStats s = service.stats();
        DMS_ASSERT(s.hits == 0, "cold phase hit the cache (%llu)",
                   static_cast<unsigned long long>(s.hits));
        cold_rps = cold.rps();
        std::printf("cold: %d requests in %.3f s = %.0f req/s\n",
                    cold.requests, cold.seconds, cold_rps);
    }

    // --- warm + mixed share a service ---------------------------
    CompileService service;

    // Prime the hot set, then replay: every timed request a hit.
    for (const std::string &t : hot_texts) {
        CompileRequest req;
        req.loopText = t;
        req.machineText = machine_text;
        req.options.scheduler = "dms";
        req.options.regalloc = true;
        service.compile(req);
    }
    const int warm_requests = std::max(2000, cold_requests * 4);
    HammerResult warm = hammerService(
        service, warm_requests, clients, machine_text, "dms",
        kSeed + 1, [&](int, Rng &rng) -> std::string {
            return hot_texts[zipf.pick(rng)];
        });
    double warm_rps = warm.rps();
    std::printf("warm: %d requests in %.3f s = %.0f req/s "
                "(%.1fx cold)\n",
                warm.requests, warm.seconds, warm_rps,
                warm_rps / cold_rps);

    // --- mixed: the zipf steady state with cold churn -----------
    // Phase-local numbers: hit rate from the stats delta across
    // the hammer, latency percentiles measured client-side inside
    // it — the service's own ServeStats span its whole lifetime
    // (prime + warm included) and would overstate both.
    const ServeStats before = service.stats();
    const int mixed_requests = cold_requests * 2;
    HammerResult mixed_run = hammerService(
        service, mixed_requests, clients, machine_text, "dms",
        kSeed + 2, [&](int i, Rng &rng) -> std::string {
            if (rng.range(1, 100) <= 75)
                return hot_texts[zipf.pick(rng)];
            return coldLoopText(kSeed ^ 0xc01dULL, i);
        });
    const ServeStats after = service.stats();
    const std::uint64_t mixed_hits =
        (after.hits - before.hits) +
        (after.coalesced - before.coalesced);
    const std::uint64_t mixed_coalesced =
        after.coalesced - before.coalesced;
    const double mixed_hit_rate =
        static_cast<double>(mixed_hits) /
        static_cast<double>(mixed_requests);
    double mixed_rps = mixed_run.rps();
    std::printf("mixed: %d requests in %.3f s = %.0f req/s, "
                "hit rate %.1f%%, %llu coalesced, p50 %.3f ms, "
                "p99 %.3f ms\n",
                mixed_run.requests, mixed_run.seconds, mixed_rps,
                mixed_hit_rate * 100.0,
                static_cast<unsigned long long>(mixed_coalesced),
                mixed_run.p50Ms, mixed_run.p99Ms);

    // --- degraded: the chaos regime, measured not feared --------
    // A fresh service with a deliberately small queue, faults
    // armed at the serve and pipeline sites, clients running the
    // full retry/shed/deadline loop — the b_eff philosophy:
    // overloaded operation is a measured regime, not an error.
    double degraded_rps = 0;
    double shed_rate = 0;
    std::uint64_t injected = 0;
    HammerResult degraded;
    ServeStats degraded_stats;
    {
        ServeOptions dopts;
        dopts.queueDepth = 8;
        CompileService dservice(dopts);
        FaultPlan plan;
        std::string perr;
        bool plan_ok = plan.parse(
            "serve.worker.compile:0.15:1337,pipeline.*:0.05:42",
            perr);
        DMS_ASSERT(plan_ok, "bad bench fault plan: %s",
                   perr.c_str());
        RetryPolicy rp;
        rp.maxAttempts = 3;
        rp.backoffBaseMs = 1;
        rp.backoffMaxMs = 8;
        rp.submitWaitMs = 1;
        armFaults(std::move(plan));
        degraded = hammerService(
            dservice, mixed_requests, clients, machine_text,
            "dms", kSeed + 3,
            [&](int i, Rng &rng) -> std::string {
                if (rng.range(1, 100) <= 75)
                    return hot_texts[zipf.pick(rng)];
                return coldLoopText(kSeed ^ 0xfa017ULL, i);
            },
            rp);
        injected = faultsInjected();
        disarmFaults();
        degraded_stats = dservice.stats();
        degraded_rps = degraded.rps();
        shed_rate = degraded_stats.requests > 0
                        ? static_cast<double>(degraded_stats.shed) /
                              static_cast<double>(
                                  degraded_stats.requests)
                        : 0.0;
        std::printf(
            "degraded: %d requests in %.3f s = %.0f req/s, "
            "%llu injected, shed rate %.1f%%, %d retries, "
            "p99 %.3f ms\n",
            degraded.requests, degraded.seconds, degraded_rps,
            static_cast<unsigned long long>(injected),
            shed_rate * 100.0, degraded.retries, degraded.p99Ms);
    }

    // --- network: the same mix through the TCP front-end --------
    // One loopback daemon, swept over client counts; hit rate and
    // mean request-line size come from the server's own counter
    // deltas, latency is measured client-side per round trip.
    std::vector<NetPoint> net_points;
    {
        CompileService nservice;
        NetServer server(nservice);
        std::string nerr;
        bool net_up = server.start(nerr);
        DMS_ASSERT(net_up, "network phase: %s", nerr.c_str());
        const int sweep[] = {1, std::max(clients, 2)};
        const int net_requests = std::max(400, cold_requests);
        for (size_t pt = 0; pt < 2; ++pt) {
            const int nc = sweep[pt];
            const ServeStats before = server.stats();
            HammerResult run = hammerNetwork(
                "127.0.0.1", server.port(), net_requests, nc,
                machine_text, "dms",
                kSeed + 40 + static_cast<std::uint64_t>(nc),
                [&](int i, Rng &rng) -> std::string {
                    if (rng.range(1, 100) <= 75)
                        return hot_texts[zipf.pick(rng)];
                    return coldLoopText(
                        kSeed ^ (0xbeefULL + pt), i);
                });
            const ServeStats after = server.stats();
            NetPoint point;
            point.clients = nc;
            point.requests = run.requests;
            point.rps = run.rps();
            point.hitRate =
                static_cast<double>((after.hits - before.hits) +
                                    (after.coalesced -
                                     before.coalesced)) /
                static_cast<double>(std::max(run.requests, 1));
            point.p50Ms = run.p50Ms;
            point.p99Ms = run.p99Ms;
            const std::uint64_t line_count =
                after.netRequests - before.netRequests;
            point.msgBytes =
                line_count > 0
                    ? static_cast<double>(after.netBytesIn -
                                          before.netBytesIn) /
                          static_cast<double>(line_count)
                    : 0.0;
            std::printf(
                "network: %d clients, %d requests in %.3f s = "
                "%.0f req/s, hit rate %.1f%%, p50 %.3f ms, "
                "p99 %.3f ms, %.0f B/req\n",
                nc, run.requests, run.seconds, point.rps,
                point.hitRate * 100.0, point.p50Ms, point.p99Ms,
                point.msgBytes);
            net_points.push_back(point);
        }
        server.stop();
    }

    // --- stats snapshot cost: the observability hot path --------
    // stats() is now relaxed atomic loads plus a histogram sweep.
    // Measure it against the design it replaced — a mutex-guarded
    // Samples store whose snapshot locks and copies every recorded
    // latency — rebuilt here at this run's real sample count, so
    // the JSON records what polling a loaded daemon costs.
    double snapshot_ns = 0;
    double snapshot_mutex_ns = 0;
    {
        constexpr int kIters = 20000;
        volatile std::uint64_t sink = 0;
        auto t0 = std::chrono::steady_clock::now();
        for (int i = 0; i < kIters; ++i)
            sink = sink + service.stats().requests;
        auto t1 = std::chrono::steady_clock::now();
        snapshot_ns =
            std::chrono::duration<double, std::nano>(t1 - t0)
                .count() /
            kIters;

        Samples old_store;
        const std::uint64_t recorded =
            service.stats().latencySamples;
        for (std::uint64_t i = 0; i < recorded; ++i)
            old_store.add(static_cast<double>(i % 97));
        std::mutex old_mutex;
        t0 = std::chrono::steady_clock::now();
        for (int i = 0; i < kIters; ++i) {
            std::lock_guard<std::mutex> lock(old_mutex);
            Samples copy = old_store;
            sink = sink + copy.count();
        }
        t1 = std::chrono::steady_clock::now();
        snapshot_mutex_ns =
            std::chrono::duration<double, std::nano>(t1 - t0)
                .count() /
            kIters;
        std::printf("stats snapshot: %.0f ns atomic vs %.0f ns "
                    "mutex+copy (%llu samples)\n",
                    snapshot_ns, snapshot_mutex_ns,
                    static_cast<unsigned long long>(recorded));
    }

    std::string json = "{";
    json += "\"bench\":\"serve_throughput\",";
    json += strfmt("\"clients\":%d,", clients);
    json += strfmt("\"workers\":%d,", service.workers());
    json += strfmt("\"hot_kernels\":%zu,", hot_texts.size());
    json += strfmt("\"cold\":{\"requests\":%d,\"rps\":%.1f},",
                   cold_requests, cold_rps);
    json += strfmt("\"warm\":{\"requests\":%d,\"rps\":%.1f},",
                   warm.requests, warm_rps);
    json += strfmt(
        "\"mixed\":{\"requests\":%d,\"rps\":%.1f,"
        "\"hit_rate\":%.4f,\"coalesced\":%llu,"
        "\"p50_ms\":%.4f,\"p90_ms\":%.4f,\"p99_ms\":%.4f},",
        mixed_run.requests, mixed_rps, mixed_hit_rate,
        static_cast<unsigned long long>(mixed_coalesced),
        mixed_run.p50Ms, mixed_run.p90Ms, mixed_run.p99Ms);
    json += strfmt(
        "\"degraded\":{\"requests\":%d,\"rps\":%.1f,"
        "\"p50_ms\":%.4f,\"p99_ms\":%.4f,\"shed_rate\":%.4f,"
        "\"injected\":%llu,\"failed\":%llu,\"expired\":%llu,"
        "\"quarantined\":%llu,\"retries\":%d},",
        degraded.requests, degraded_rps, degraded.p50Ms,
        degraded.p99Ms, shed_rate,
        static_cast<unsigned long long>(injected),
        static_cast<unsigned long long>(degraded_stats.failed),
        static_cast<unsigned long long>(degraded_stats.expired),
        static_cast<unsigned long long>(
            degraded_stats.quarantined),
        degraded.retries);
    json += "\"network\":[";
    for (size_t pt = 0; pt < net_points.size(); ++pt) {
        const NetPoint &p = net_points[pt];
        json += strfmt(
            "%s{\"clients\":%d,\"requests\":%d,\"rps\":%.1f,"
            "\"hit_rate\":%.4f,\"p50_ms\":%.4f,\"p99_ms\":%.4f,"
            "\"msg_bytes\":%.1f}",
            pt == 0 ? "" : ",", p.clients, p.requests, p.rps,
            p.hitRate, p.p50Ms, p.p99Ms, p.msgBytes);
    }
    json += "],";
    json += strfmt("\"stats_snapshot_ns\":%.1f,", snapshot_ns);
    json += strfmt("\"stats_snapshot_mutex_ns\":%.1f,",
                   snapshot_mutex_ns);
    json += strfmt("\"warm_vs_cold\":%.1f}",
                   warm_rps / cold_rps);

    const char *path = "BENCH_serve.json";
    std::FILE *f = std::fopen(path, "w");
    if (f == nullptr) {
        warn("cannot write %s", path);
        return 1;
    }
    std::fputs(json.c_str(), f);
    std::fputc('\n', f);
    std::fclose(f);
    inform("wrote %s", path);

    if (warm_rps < cold_rps * min_speedup) {
        std::fprintf(stderr,
                     "FAIL: warm %.0f req/s is below %dx cold "
                     "%.0f req/s\n",
                     warm_rps, min_speedup, cold_rps);
        return 1;
    }
    std::printf("gate: warm/cold = %.1fx (>= %dx) ok\n",
                warm_rps / cold_rps, min_speedup);

    // Relative gate against a previous run of this bench (the CI
    // perf-gate job builds the merge base in a worktree, runs it,
    // and points DMS_SERVE_BASELINE at its BENCH_serve.json).
    if (const char *bp = std::getenv("DMS_SERVE_BASELINE")) {
        std::ifstream in(bp);
        if (!in) {
            warn("DMS_SERVE_BASELINE '%s' unreadable; skipping "
                 "gate",
                 bp);
            return 0;
        }
        std::stringstream ss;
        ss << in.rdbuf();
        const double base = baselineWarmRps(ss.str());
        if (base <= 0) {
            warn("baseline has no warm rps; skipping gate");
            return 0;
        }
        const int max_drop = maxDropPercentFromEnv();
        const double floor = base * (100 - max_drop) / 100.0;
        if (warm_rps < floor) {
            std::fprintf(stderr,
                         "FAIL: warm %.0f req/s is more than "
                         "%d%% below baseline %.0f (floor "
                         "%.0f)\n",
                         warm_rps, max_drop, base, floor);
            return 1;
        }
        std::printf("gate: warm %.0f req/s vs baseline %.0f "
                    "(floor %.0f) ok\n",
                    warm_rps, base, floor);
    }
    return 0;
}
