/**
 * @file
 * Ablation A4: single-phase DMS vs the two-phase
 * partition-then-schedule baseline (paper refs [6]/[12]). The
 * paper's thesis is that integrating partitioning into the
 * scheduler avoids the II loss of committing to a partition first.
 */

#include <cstdio>

#include "baseline/twophase.h"
#include "eval/figures.h"
#include "ir/prepass.h"
#include "sched/verifier.h"
#include "workload/unroll_policy.h"

int
main()
{
    using namespace dms;
    int count = suiteCountFromEnv(300);
    std::vector<Loop> suite = standardSuite(kSuiteSeed, count);
    auto set1 = selectSet(suite, LoopSet::Set1);
    std::printf("ablation A4 (two-phase): %zu loops\n",
                suite.size());

    Table t("A4: DMS (single phase) vs partition-then-schedule");
    t.header({"clusters", "avg_II_dms", "avg_II_twophase",
              "dms_wins", "twophase_wins", "avg_moves_dms",
              "avg_moves_2p"});
    for (int c : {2, 4, 6, 8, 10}) {
        MachineModel m = MachineModel::clusteredRing(c);
        double ii_d = 0.0;
        double ii_t = 0.0;
        double mv_d = 0.0;
        double mv_t = 0.0;
        int wins_d = 0;
        int wins_t = 0;
        int n = 0;
        for (size_t i : set1) {
            Ddg body = applyUnrollPolicy(suite[i].ddg, m);
            singleUsePrepass(body, m.latencyOf(Opcode::Copy));
            int before = body.liveOpCount();

            DmsOutcome d = scheduleDms(body, m);
            TwoPhaseOutcome tp = scheduleTwoPhase(body, m);
            if (!d.sched.ok || !tp.sched.ok)
                continue;
            checkSchedule(*d.ddg, m, *d.sched.schedule);
            checkSchedule(*tp.ddg, m, *tp.sched.schedule);

            ii_d += d.sched.ii;
            ii_t += tp.sched.ii;
            mv_d += d.sched.movesInserted;
            mv_t += tp.ddg->liveOpCount() - before;
            wins_d += d.sched.ii < tp.sched.ii;
            wins_t += tp.sched.ii < d.sched.ii;
            ++n;
        }
        t.row({Table::num(c), Table::num(ii_d / n),
               Table::num(ii_t / n), Table::num(wins_d),
               Table::num(wins_t), Table::num(mv_d / n),
               Table::num(mv_t / n)});
    }
    t.print();
    return 0;
}
