/**
 * @file
 * Ablation A5: backtracking budget sensitivity (Rau's budget
 * ratio). The paper reports DMS and IMS backtracking frequencies
 * are "of the same order"; this bench quantifies II and
 * scheduling-effort as the budget shrinks and grows.
 */

#include <cstdio>

#include "eval/figures.h"

int
main()
{
    using namespace dms;
    int count = suiteCountFromEnv(300);
    std::vector<Loop> suite = standardSuite(kSuiteSeed, count);
    auto set1 = selectSet(suite, LoopSet::Set1);
    std::printf("ablation A5 (budget): %zu loops, 6 clusters\n",
                suite.size());

    Table t("A5: budget ratio vs II and scheduling effort");
    t.header({"budget_ratio", "avg_II_dms", "avg_II_ims",
              "avg_attempts_dms"});
    for (int ratio : {1, 2, 4, 6, 12, 24}) {
        DmsParams dp;
        dp.budgetRatio = ratio;
        SchedParams ip;
        ip.budgetRatio = ratio;

        double ii_d = 0.0;
        double ii_i = 0.0;
        double att = 0.0;
        int n = 0;
        for (size_t i : set1) {
            LoopRun d = runLoopClustered(suite[i], 6, dp, true);
            LoopRun u = runLoopUnclustered(suite[i], 6, ip, true);
            if (!d.ok || !u.ok)
                continue;
            ii_d += d.ii;
            ii_i += u.ii;
            att += d.ii - d.mii + 1;
            ++n;
        }
        t.row({Table::num(ratio), Table::num(ii_d / n),
               Table::num(ii_i / n), Table::num(att / n)});
    }
    t.print();
    return 0;
}
