/**
 * @file
 * Scheduler hot-path microbenchmark: single-thread throughput of the
 * inner placement loop (the fig5 per-cell path). Bodies are unrolled
 * and pre-passed once outside the timer; the timed region is pure
 * scheduleDms / scheduleIms over the synthetic suite. Emits
 * BENCH_sched_hotpath.json with placements/sec (scheduling steps,
 * i.e. budgetUsed) and attempts/sec so the perf trajectory of the
 * scheduler core is machine-readable across PRs.
 *
 * Knobs: DMS_SUITE_COUNT (default 200 loops), DMS_HOTPATH_REPS
 * (default 3 timed repetitions; the fastest rep is reported).
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/dms.h"
#include "eval/runner.h"
#include "ir/prepass.h"
#include "sched/ims.h"
#include "support/diag.h"
#include "support/strings.h"
#include "workload/suite.h"
#include "workload/unroll_policy.h"

namespace {

using namespace dms;

/** One pre-processed scheduling problem. */
struct Prepared
{
    Ddg body;
    int clusters = 0; ///< ring size, or width for unclustered
    bool clustered = false;
};

struct Throughput
{
    double seconds = 0;     ///< fastest rep wall time
    long placements = 0;    ///< budgetUsed per rep
    long attempts = 0;      ///< II/restart attempts per rep
    long scheduled = 0;     ///< loops that reached a schedule

    double
    placementsPerSec() const
    {
        return seconds > 0 ? placements / seconds : 0;
    }

    double
    attemptsPerSec() const
    {
        return seconds > 0 ? attempts / seconds : 0;
    }
};

int
repsFromEnv(int fallback)
{
    const char *s = std::getenv("DMS_HOTPATH_REPS");
    if (s == nullptr)
        return fallback;
    int v = 0;
    if (!parseInt(s, v) || v <= 0) {
        warn("DMS_HOTPATH_REPS='%s' is not a positive integer; "
             "using %d", s, fallback);
        return fallback;
    }
    return v;
}

Throughput
timeReps(const std::vector<Prepared> &work, int reps)
{
    Throughput best;
    for (int r = 0; r < reps; ++r) {
        Throughput t;
        auto t0 = std::chrono::steady_clock::now();
        for (const Prepared &p : work) {
            if (p.clustered) {
                MachineModel m =
                    MachineModel::clusteredRing(p.clusters);
                DmsOutcome out = scheduleDms(p.body, m);
                t.placements += out.sched.budgetUsed;
                t.attempts += out.sched.attempts;
                t.scheduled += out.sched.ok ? 1 : 0;
            } else {
                MachineModel m =
                    MachineModel::unclustered(p.clusters);
                SchedOutcome out = scheduleIms(p.body, m);
                t.placements += out.budgetUsed;
                t.attempts += out.attempts;
                t.scheduled += out.ok ? 1 : 0;
            }
        }
        auto t1 = std::chrono::steady_clock::now();
        t.seconds = std::chrono::duration<double>(t1 - t0).count();
        if (r == 0 || t.seconds < best.seconds) {
            long sched = best.scheduled;
            best = t;
            if (r > 0 && t.scheduled != sched)
                fatal("hot-path reps diverged (%ld vs %ld loops "
                      "scheduled)", t.scheduled, sched);
        }
    }
    return best;
}

void
appendThroughput(std::string &out, const char *key,
                 const Throughput &t)
{
    out += strfmt("\"%s\":{\"seconds\":%.6f,\"placements\":%ld,"
                  "\"attempts\":%ld,\"scheduled\":%ld,"
                  "\"placements_per_sec\":%.1f,"
                  "\"attempts_per_sec\":%.1f}",
                  key, t.seconds, t.placements, t.attempts,
                  t.scheduled, t.placementsPerSec(),
                  t.attemptsPerSec());
}

} // namespace

int
main()
{
    using namespace dms;
    const int count = suiteCountFromEnv(200);
    const int reps = repsFromEnv(3);
    std::vector<Loop> suite = standardSuite(kSuiteSeed, count);
    std::printf("sched_hotpath: %zu loops, %d reps\n", suite.size(),
                reps);

    // Pre-process outside the timer: the timed region is the
    // scheduler core only, exactly what this PR optimizes.
    std::vector<Prepared> dms_work;
    std::vector<Prepared> ims_work;
    for (const Loop &loop : suite) {
        for (int clusters : {4, 8}) {
            Prepared p;
            MachineModel m = MachineModel::clusteredRing(clusters);
            p.body = applyUnrollPolicy(loop.ddg, m);
            singleUsePrepass(p.body, m.latencyOf(Opcode::Copy));
            p.clusters = clusters;
            p.clustered = true;
            dms_work.push_back(std::move(p));
        }
        Prepared p;
        MachineModel m = MachineModel::unclustered(4);
        p.body = applyUnrollPolicy(loop.ddg, m);
        p.clusters = 4;
        p.clustered = false;
        ims_work.push_back(std::move(p));
    }

    Throughput dms_t = timeReps(dms_work, reps);
    Throughput ims_t = timeReps(ims_work, reps);

    std::printf("dms: %.3f s, %.0f placements/s, %.0f attempts/s\n",
                dms_t.seconds, dms_t.placementsPerSec(),
                dms_t.attemptsPerSec());
    std::printf("ims: %.3f s, %.0f placements/s, %.0f attempts/s\n",
                ims_t.seconds, ims_t.placementsPerSec(),
                ims_t.attemptsPerSec());

    std::string json = "{";
    json += "\"bench\":\"sched_hotpath\",";
    json += strfmt("\"suite_size\":%zu,", suite.size());
    json += strfmt("\"reps\":%d,", reps);
    json += strfmt("\"dms_problems\":%zu,", dms_work.size());
    json += strfmt("\"ims_problems\":%zu,", ims_work.size());
    appendThroughput(json, "dms", dms_t);
    json += ",";
    appendThroughput(json, "ims", ims_t);
    json += "}";

    const char *path = "BENCH_sched_hotpath.json";
    std::FILE *f = std::fopen(path, "w");
    if (f == nullptr) {
        warn("cannot write %s", path);
        return 1;
    }
    std::fputs(json.c_str(), f);
    std::fputc('\n', f);
    std::fclose(f);
    inform("wrote %s", path);
    return 0;
}
