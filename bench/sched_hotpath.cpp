/**
 * @file
 * Scheduler hot-path microbenchmark: single-thread throughput of the
 * inner placement loop (the fig5 per-cell path). Bodies are unrolled
 * and pre-passed once outside the timer; the timed region is pure
 * scheduleDms / scheduleIms over the synthetic suite. Emits
 * BENCH_sched_hotpath.json with placements/sec (scheduling steps,
 * i.e. budgetUsed) and attempts/sec so the perf trajectory of the
 * scheduler core is machine-readable across PRs.
 *
 * Knobs: DMS_SUITE_COUNT (default 200 loops), DMS_HOTPATH_REPS
 * (default 3 timed repetitions; the fastest rep is reported).
 *
 * Regression gate: when DMS_HOTPATH_BASELINE names a previous
 * BENCH_sched_hotpath.json, the run fails (exit 1) if either
 * scheduler's placements_per_sec drops more than
 * DMS_HOTPATH_MAX_DROP percent (default 15) below the baseline —
 * the CI smoke step points this at the checked-in file.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/dms.h"
#include "eval/runner.h"
#include "ir/prepass.h"
#include "sched/ims.h"
#include "sched/mii.h"
#include "sched/priority.h"
#include "support/diag.h"
#include "support/strings.h"
#include "workload/suite.h"
#include "workload/unroll_policy.h"

namespace {

using namespace dms;

/** One pre-processed scheduling problem. */
struct Prepared
{
    Ddg body;
    int clusters = 0; ///< ring size, or width for unclustered
    bool clustered = false;
};

struct Throughput
{
    double seconds = 0;     ///< fastest rep wall time
    long placements = 0;    ///< budgetUsed per rep
    long attempts = 0;      ///< II/restart attempts per rep
    long scheduled = 0;     ///< loops that reached a schedule

    double
    placementsPerSec() const
    {
        return seconds > 0 ? placements / seconds : 0;
    }

    double
    attemptsPerSec() const
    {
        return seconds > 0 ? attempts / seconds : 0;
    }
};

int
repsFromEnv(int fallback)
{
    const char *s = std::getenv("DMS_HOTPATH_REPS");
    if (s == nullptr)
        return fallback;
    int v = 0;
    if (!parseInt(s, v) || v <= 0) {
        warn("DMS_HOTPATH_REPS='%s' is not a positive integer; "
             "using %d", s, fallback);
        return fallback;
    }
    return v;
}

Throughput
timeReps(const std::vector<Prepared> &work, int reps,
         const DmsParams *dms_params = nullptr)
{
    Throughput best;
    for (int r = 0; r < reps; ++r) {
        Throughput t;
        auto t0 = std::chrono::steady_clock::now();
        for (const Prepared &p : work) {
            if (p.clustered) {
                MachineModel m =
                    MachineModel::clusteredRing(p.clusters);
                DmsOutcome out = scheduleDms(
                    p.body, m,
                    dms_params != nullptr ? *dms_params
                                          : DmsParams{});
                t.placements += out.sched.budgetUsed;
                t.attempts += out.sched.attempts;
                t.scheduled += out.sched.ok ? 1 : 0;
            } else {
                MachineModel m =
                    MachineModel::unclustered(p.clusters);
                SchedOutcome out = scheduleIms(p.body, m);
                t.placements += out.budgetUsed;
                t.attempts += out.attempts;
                t.scheduled += out.ok ? 1 : 0;
            }
        }
        auto t1 = std::chrono::steady_clock::now();
        t.seconds = std::chrono::duration<double>(t1 - t0).count();
        if (r == 0 || t.seconds < best.seconds) {
            long sched = best.scheduled;
            best = t;
            if (r > 0 && t.scheduled != sched)
                fatal("hot-path reps diverged (%ld vs %ld loops "
                      "scheduled)", t.scheduled, sched);
        }
    }
    return best;
}

/**
 * Extract <object_key>.placements_per_sec from a baseline JSON
 * (string scan; the file is our own single-line emission). Returns
 * a negative value when the key is absent.
 */
double
baselineRate(const std::string &json, const char *object_key)
{
    std::string object = strfmt("\"%s\":{", object_key);
    size_t at = json.find(object);
    if (at == std::string::npos)
        return -1.0;
    const char *field = "\"placements_per_sec\":";
    size_t val = json.find(field, at);
    if (val == std::string::npos)
        return -1.0;
    return std::strtod(json.c_str() + val + std::strlen(field),
                       nullptr);
}

int
maxDropPercentFromEnv()
{
    const char *s = std::getenv("DMS_HOTPATH_MAX_DROP");
    if (s == nullptr)
        return 15;
    int v = 0;
    if (!parseInt(s, v) || v >= 100) {
        warn("DMS_HOTPATH_MAX_DROP='%s' is not a percentage below "
             "100; using 15", s);
        return 15;
    }
    return v;
}

/**
 * Compare one measured rate against the baseline file. Returns
 * false (after an error line) on a drop beyond the tolerance.
 */
bool
gateAgainstBaseline(const char *key, double measured,
                    const std::string &baseline_json, int max_drop)
{
    double base = baselineRate(baseline_json, key);
    if (base <= 0) {
        warn("baseline has no %s placements_per_sec; skipping gate",
             key);
        return true;
    }
    double floor = base * (100 - max_drop) / 100.0;
    if (measured < floor) {
        std::fprintf(stderr,
                     "FAIL: %s placements_per_sec %.0f is more "
                     "than %d%% below baseline %.0f (floor %.0f)\n",
                     key, measured, max_drop, base, floor);
        return false;
    }
    std::printf("gate: %s %.0f placements/s vs baseline %.0f "
                "(floor %.0f) ok\n", key, measured, base, floor);
    return true;
}

/** Cost of walking every body's height table up an II ladder. */
struct LadderCost
{
    double fullSeconds = 0;  ///< one full relaxation per rung
    double deltaSeconds = 0; ///< HeightLadder delta steps
    long rungs = 0;          ///< total (body, II) rungs walked
    long affectedOps = 0;    ///< sum of per-body affected sets
    long totalOps = 0;       ///< sum of per-body live op counts
};

/**
 * Time the ladder-setup cost in isolation: for each prepared body,
 * walk II = RecMII .. RecMII+7 once with a full relaxation per rung
 * and once with the incremental HeightLadder, which is what every
 * DmsAttempt::beginAttempt now pays.
 */
LadderCost
timeHeightLadder(const std::vector<Prepared> &work)
{
    constexpr int kRungs = 8;
    LadderCost cost;

    std::vector<int> base;
    base.reserve(work.size());
    for (const Prepared &p : work) {
        base.push_back(std::max(1, recMii(p.body)));
        cost.totalOps += p.body.liveOpCount();
    }

    Heights scratch;
    auto t0 = std::chrono::steady_clock::now();
    for (size_t i = 0; i < work.size(); ++i) {
        for (int ii = base[i]; ii < base[i] + kRungs; ++ii)
            computeHeights(work[i].body, ii, scratch);
    }
    auto t1 = std::chrono::steady_clock::now();
    cost.fullSeconds =
        std::chrono::duration<double>(t1 - t0).count();

    t0 = std::chrono::steady_clock::now();
    for (size_t i = 0; i < work.size(); ++i) {
        HeightLadder fresh;
        for (int ii = base[i]; ii < base[i] + kRungs; ++ii) {
            if (!fresh.ensure(work[i].body, ii))
                fatal("height ladder diverged at II %d", ii);
        }
        cost.affectedOps += fresh.affectedOps();
    }
    t1 = std::chrono::steady_clock::now();
    cost.deltaSeconds =
        std::chrono::duration<double>(t1 - t0).count();
    cost.rungs = static_cast<long>(work.size()) * kRungs;
    return cost;
}

void
appendThroughput(std::string &out, const char *key,
                 const Throughput &t)
{
    out += strfmt("\"%s\":{\"seconds\":%.6f,\"placements\":%ld,"
                  "\"attempts\":%ld,\"scheduled\":%ld,"
                  "\"placements_per_sec\":%.1f,"
                  "\"attempts_per_sec\":%.1f}",
                  key, t.seconds, t.placements, t.attempts,
                  t.scheduled, t.placementsPerSec(),
                  t.attemptsPerSec());
}

} // namespace

int
main()
{
    using namespace dms;
    const int count = suiteCountFromEnv(200);
    const int reps = repsFromEnv(3);

    // Read the baseline before anything writes the output file —
    // CI points DMS_HOTPATH_BASELINE at the checked-in JSON, which
    // this run will overwrite in place.
    std::string baseline_json;
    const char *baseline_path = std::getenv("DMS_HOTPATH_BASELINE");
    if (baseline_path != nullptr) {
        std::ifstream in(baseline_path);
        if (!in) {
            warn("cannot read baseline '%s'; gate disabled",
                 baseline_path);
            baseline_path = nullptr;
        } else {
            std::stringstream ss;
            ss << in.rdbuf();
            baseline_json = ss.str();
        }
    }

    std::vector<Loop> suite = standardSuite(kSuiteSeed, count);
    std::printf("sched_hotpath: %zu loops, %d reps\n", suite.size(),
                reps);

    // Pre-process outside the timer: the timed region is the
    // scheduler core only, exactly what this PR optimizes.
    std::vector<Prepared> dms_work;
    std::vector<Prepared> ims_work;
    for (const Loop &loop : suite) {
        for (int clusters : {4, 8}) {
            Prepared p;
            MachineModel m = MachineModel::clusteredRing(clusters);
            p.body = applyUnrollPolicy(loop.ddg, m);
            singleUsePrepass(p.body, m.latencyOf(Opcode::Copy));
            p.clusters = clusters;
            p.clustered = true;
            dms_work.push_back(std::move(p));
        }
        Prepared p;
        MachineModel m = MachineModel::unclustered(4);
        p.body = applyUnrollPolicy(loop.ddg, m);
        p.clusters = 4;
        p.clustered = false;
        ims_work.push_back(std::move(p));
    }

    Throughput dms_t = timeReps(dms_work, reps);
    Throughput ims_t = timeReps(ims_work, reps);

    std::printf("dms: %.3f s, %.0f placements/s, %.0f attempts/s\n",
                dms_t.seconds, dms_t.placementsPerSec(),
                dms_t.attemptsPerSec());
    std::printf("ims: %.3f s, %.0f placements/s, %.0f attempts/s\n",
                ims_t.seconds, ims_t.placementsPerSec(),
                ims_t.attemptsPerSec());

    // Ladder sub-block: height-table setup cost (full relaxation
    // per rung vs the incremental HeightLadder) and the speculative
    // II ladder against the serial one. The speculative walk must
    // be bit-identical work — same schedules, same attempts, same
    // budget — so any accounting drift is a fatal bench failure.
    LadderCost ladder = timeHeightLadder(dms_work);
    DmsParams serial_params;
    serial_params.speculateII = 0;
    DmsParams spec_params;
    spec_params.speculateII = 1;
    Throughput serial_t = timeReps(dms_work, reps, &serial_params);
    Throughput spec_t = timeReps(dms_work, reps, &spec_params);
    const bool match = serial_t.scheduled == spec_t.scheduled &&
                       serial_t.attempts == spec_t.attempts &&
                       serial_t.placements == spec_t.placements;
    if (!match) {
        fatal("speculative ladder diverged from serial: "
              "%ld/%ld scheduled, %ld/%ld attempts, %ld/%ld "
              "placements",
              spec_t.scheduled, serial_t.scheduled,
              spec_t.attempts, serial_t.attempts,
              spec_t.placements, serial_t.placements);
    }
    std::printf("ladder: %ld rungs, full %.4f s, delta %.4f s "
                "(%.1fx), %ld/%ld ops II-dependent\n",
                ladder.rungs, ladder.fullSeconds,
                ladder.deltaSeconds,
                ladder.deltaSeconds > 0
                    ? ladder.fullSeconds / ladder.deltaSeconds
                    : 0.0,
                ladder.affectedOps, ladder.totalOps);
    std::printf("ladder: serial %.3f s, speculative %.3f s, "
                "scheduled match %s\n",
                serial_t.seconds, spec_t.seconds,
                match ? "yes" : "no");

    std::string json = "{";
    json += "\"bench\":\"sched_hotpath\",";
    json += strfmt("\"suite_size\":%zu,", suite.size());
    json += strfmt("\"reps\":%d,", reps);
    json += strfmt("\"dms_problems\":%zu,", dms_work.size());
    json += strfmt("\"ims_problems\":%zu,", ims_work.size());
    appendThroughput(json, "dms", dms_t);
    json += ",";
    appendThroughput(json, "ims", ims_t);
    json += ",";
    json += strfmt(
        "\"ladder\":{\"rungs\":%ld,\"full_seconds\":%.6f,"
        "\"delta_seconds\":%.6f,\"affected_ops\":%ld,"
        "\"total_ops\":%ld,\"serial_seconds\":%.6f,"
        "\"speculative_seconds\":%.6f,\"scheduled_match\":%s}",
        ladder.rungs, ladder.fullSeconds, ladder.deltaSeconds,
        ladder.affectedOps, ladder.totalOps, serial_t.seconds,
        spec_t.seconds, match ? "true" : "false");
    json += "}";

    const char *path = "BENCH_sched_hotpath.json";
    std::FILE *f = std::fopen(path, "w");
    if (f == nullptr) {
        warn("cannot write %s", path);
        return 1;
    }
    std::fputs(json.c_str(), f);
    std::fputc('\n', f);
    std::fclose(f);
    inform("wrote %s", path);

    if (baseline_path != nullptr) {
        const int max_drop = maxDropPercentFromEnv();
        bool ok = gateAgainstBaseline("dms", dms_t.placementsPerSec(),
                                      baseline_json, max_drop);
        ok &= gateAgainstBaseline("ims", ims_t.placementsPerSec(),
                                  baseline_json, max_drop);
        if (!ok)
            return 1;
    }
    return 0;
}
