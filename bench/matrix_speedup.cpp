/**
 * @file
 * Parallel-runner validation bench: runs the figure matrix serially
 * (jobs=1) and in parallel (jobs=8 by default, DMS_JOBS overrides),
 * checks the two result sets are bit-identical, and emits
 * BENCH_matrix_speedup.json with both wall times and the speedup.
 * This is the measurement behind the "runMatrix >= 3x faster at
 * jobs=8" acceptance line (on hardware with >= 8 cores).
 */

#include <chrono>
#include <cstdio>

#include "eval/report.h"
#include "eval/runner.h"
#include "support/diag.h"
#include "support/thread_pool.h"

namespace {

using namespace dms;

double
timedMatrix(const std::vector<Loop> &suite, int jobs,
            std::vector<ConfigRun> &out)
{
    RunnerOptions opts;
    opts.jobs = jobs;
    opts.progress = false;
    auto t0 = std::chrono::steady_clock::now();
    out = runMatrix(suite, opts);
    auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
}

} // namespace

int
main()
{
    using namespace dms;
    int count = suiteCountFromEnv(1258);
    int jobs = ThreadPool::jobsFromEnv(8);
    std::printf("matrix_speedup: %d loops, jobs=1 vs jobs=%d\n",
                count, jobs);

    std::vector<Loop> suite = standardSuite(kSuiteSeed, count);

    std::vector<ConfigRun> serial;
    std::vector<ConfigRun> parallel;
    double t_serial = timedMatrix(suite, 1, serial);
    std::printf("jobs=1: %.3f s\n", t_serial);
    double t_parallel = timedMatrix(suite, jobs, parallel);
    std::printf("jobs=%d: %.3f s\n", jobs, t_parallel);

    bool identical = serial == parallel;
    double speedup = t_parallel > 0 ? t_serial / t_parallel : 0.0;
    std::printf("speedup: %.2fx, results %s\n", speedup,
                identical ? "bit-identical" : "DIVERGED");
    if (!identical)
        fatal("parallel matrix diverged from the serial matrix");

    MatrixReport meta;
    meta.bench = "matrix_speedup";
    meta.suiteSize = suite.size();
    meta.jobs = jobs;
    meta.wallSeconds = t_parallel;
    meta.extra =
        strfmt("\"serial_seconds\":%.6f,\"speedup\":%.4f,"
               "\"identical\":true", t_serial, speedup);
    writeMatrixReport("BENCH_matrix_speedup.json", meta, suite,
                      parallel);
    return 0;
}
