/**
 * @file
 * Regenerates paper Figure 4: the fraction of loops whose II
 * increases due to DMS partitioning, per cluster count 1-10.
 * Paper shape: over 80% of loops show no overhead up to 8 clusters;
 * 2-3 cluster overheads come only from copy operations (no
 * communication conflicts are possible on those rings).
 *
 * DMS_SUITE_COUNT overrides the 1258-loop default for quick runs.
 */

#include <cstdio>

#include "eval/figures.h"
#include "eval/report.h"

int
main()
{
    using namespace dms;
    int count = suiteCountFromEnv(1258);
    std::printf("fig4: suite of %d synthetic loops + %zu kernels "
                "(seed %llu)\n",
                count, namedKernels().size(),
                static_cast<unsigned long long>(kSuiteSeed));

    std::vector<Loop> suite = standardSuite(kSuiteSeed, count);
    RunnerOptions opts;
    opts.maxClusters = 10;
    auto matrix = runMatrixReported("fig4", suite, opts);

    figure4(suite, matrix).print();

    // Companion detail the paper narrates: how many of the
    // overhead loops at 2-3 clusters carry copy ops, and move
    // counts per cluster count.
    Table detail("Fig.4 companion: copies and moves per config");
    detail.header({"clusters", "avg_copies", "avg_moves",
                   "loops_with_moves"});
    auto set1 = selectSet(suite, LoopSet::Set1);
    for (const ConfigRun &cfg : matrix) {
        double copies = 0.0;
        double moves = 0.0;
        int with_moves = 0;
        for (size_t i : set1) {
            copies += cfg.clustered[i].copiesInserted;
            moves += cfg.clustered[i].movesInserted;
            with_moves += cfg.clustered[i].movesInserted > 0;
        }
        detail.row({Table::num(cfg.clusters),
                    Table::num(copies / set1.size()),
                    Table::num(moves / set1.size()),
                    Table::num(with_moves)});
    }
    detail.print();
    return 0;
}
